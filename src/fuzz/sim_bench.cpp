#include "fuzz/sim_bench.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <functional>
#include <utility>
#include <vector>

#include "common/bench_report.h"
#include "core/designs.h"
#include "core/synthesizer.h"
#include "fuzz/bdl_gen.h"
#include "fuzz/diff_runner.h"
#include "ir/interp.h"
#include "lang/frontend.h"
#include "rtl/rtlsim.h"
#include "vm/sim_engine.h"

namespace mphls::fuzz {

namespace {

/// Grow `batch` (by doubling) until one pass of `once` x batch takes at
/// least ~20ms, then return the best-of-`repeats` seconds for that batch.
/// Short passes would otherwise be all clock noise — sub-microsecond VM
/// runs need thousands of iterations per timing sample.
double calibratedBest(int repeats, long& batch,
                      const std::function<void()>& once) {
  for (;;) {
    WallTimer t;
    for (long i = 0; i < batch; ++i) once();
    if (t.seconds() >= 0.02 || batch >= (1L << 22)) break;
    batch *= 2;
  }
  return BenchReporter::timeBest(repeats, [&] {
    for (long i = 0; i < batch; ++i) once();
  });
}

double geomean(const std::vector<double>& xs) {
  if (xs.empty()) return 0;
  double logSum = 0;
  for (double x : xs) logSum += std::log(x);
  return std::exp(logSum / (double)xs.size());
}

SynthesisOptions rtlPoint() {
  SynthesisOptions so;
  so.scheduler = SchedulerKind::List;
  so.resources = ResourceLimits::universalSet(2);
  return so;
}

}  // namespace

int runSimBenchSuite(const SimBenchOptions& options) {
  WallTimer total;
  BenchReporter rep("sim_throughput");
  rep.root()["repeats"] = options.repeats;

  // Pure-VM engine for the speed measurements: cross-checking off, so the
  // numbers are the VM alone, not VM + sampled interpreter re-runs.
  vm::EngineOptions pureVm;
  pureVm.crossCheck = 0.0;

  std::vector<double> rtlSpeedups, behavSpeedups;
  JsonValue designsJson = JsonValue::array();
  for (const auto& d : designs::all()) {
    JsonValue entry = JsonValue::object();
    entry["name"] = d.name;

    // Behavioral: whole-program runs/sec.
    Function fn = compileBdlOrThrow(d.source);
    Interpreter interp(fn);
    long bi = 1;
    double ti = calibratedBest(options.repeats, bi,
                               [&] { (void)interp.run(d.sampleInputs); });
    vm::BehavSim behav(fn, pureVm);
    long bv = 1;
    double tv = calibratedBest(options.repeats, bv,
                               [&] { (void)behav.run(d.sampleInputs); });
    const double behavInterpRate = (double)bi / ti;
    const double behavVmRate = (double)bv / tv;
    JsonValue bj = JsonValue::object();
    bj["interp_runs_per_sec"] = behavInterpRate;
    bj["vm_runs_per_sec"] = behavVmRate;
    bj["speedup"] = behavVmRate / behavInterpRate;
    entry["behavioral"] = std::move(bj);
    behavSpeedups.push_back(behavVmRate / behavInterpRate);

    // RTL: cycles/sec (cycles-per-run is fixed for fixed inputs, so the
    // rate is just run throughput scaled by the design's cycle count).
    Synthesizer synth(rtlPoint());
    SynthesisResult r = synth.synthesizeSource(d.source);
    RtlSimulator rtlInterp(r.design);
    const long cyclesPerRun = rtlInterp.run(d.sampleInputs).cycles;
    long ri = 1;
    double tri = calibratedBest(options.repeats, ri,
                                [&] { (void)rtlInterp.run(d.sampleInputs); });
    WallTimer compileTimer;
    vm::RtlSim rtlVm(r.design, pureVm);
    const double compileSeconds = compileTimer.seconds();
    long rv = 1;
    double trv = calibratedBest(options.repeats, rv,
                                [&] { (void)rtlVm.run(d.sampleInputs); });
    const double rtlInterpRate = (double)ri * (double)cyclesPerRun / tri;
    const double rtlVmRate = (double)rv * (double)cyclesPerRun / trv;
    JsonValue rj = JsonValue::object();
    rj["cycles_per_run"] = cyclesPerRun;
    rj["interp_cycles_per_sec"] = rtlInterpRate;
    rj["vm_cycles_per_sec"] = rtlVmRate;
    rj["speedup"] = rtlVmRate / rtlInterpRate;
    rj["vm_compile_seconds"] = compileSeconds;
    entry["rtl"] = std::move(rj);
    rtlSpeedups.push_back(rtlVmRate / rtlInterpRate);
    designsJson.push(std::move(entry));

    if (!options.quiet)
      std::printf(
          "sim bench %-8s behav %10.0f -> %10.0f runs/s (%5.1fx)   "
          "rtl %10.0f -> %11.0f cycles/s (%5.1fx)\n",
          d.name, behavInterpRate, behavVmRate,
          behavVmRate / behavInterpRate, rtlInterpRate, rtlVmRate,
          rtlVmRate / rtlInterpRate);
  }
  rep.root()["designs"] = std::move(designsJson);

  double minRtl = rtlSpeedups.front(), minBehav = behavSpeedups.front();
  for (double s : rtlSpeedups) minRtl = std::min(minRtl, s);
  for (double s : behavSpeedups) minBehav = std::min(minBehav, s);
  rep.root()["behav_speedup_geomean"] = geomean(behavSpeedups);
  rep.root()["behav_speedup_min"] = minBehav;
  rep.root()["rtl_speedup_geomean"] = geomean(rtlSpeedups);
  rep.root()["rtl_speedup_min"] = minRtl;

  // End-to-end fuzz batch: full runSource (synthesis + checking + co-sim)
  // over fixed seeds, once per engine. Single pass — a pass takes seconds,
  // so best-of-N would mostly re-measure the synthesis pipeline; the
  // number is honest wall-clock fuzz throughput, synthesis cost included.
  const long seeds = options.fuzzSeeds;
  DiffOptions diff;
  diff.points = FuzzMatrix::quick().points();
  auto fuzzPass = [&](vm::EngineKind kind) {
    diff.engine.kind = kind;
    diff.engine.crossCheck = 0.0;
    long sims = 0;
    WallTimer t;
    for (long s = 1; s <= seeds; ++s) {
      GenProgram prog = generateProgram((std::uint64_t)s);
      sims += runSource(prog.render(), (std::uint64_t)s, diff).simulations;
    }
    return std::make_pair(t.seconds(), sims);
  };
  auto [interpSecs, interpSims] = fuzzPass(vm::EngineKind::Interp);
  auto [vmSecs, vmSims] = fuzzPass(vm::EngineKind::Vm);
  JsonValue fj = JsonValue::object();
  fj["seeds"] = seeds;
  fj["matrix"] = "quick";
  fj["passes"] = 1;
  fj["cosims"] = interpSims;
  fj["interp_seconds"] = interpSecs;
  fj["vm_seconds"] = vmSecs;
  fj["interp_cosims_per_sec"] =
      interpSecs > 0 ? (double)interpSims / interpSecs : 0.0;
  fj["vm_cosims_per_sec"] = vmSecs > 0 ? (double)vmSims / vmSecs : 0.0;
  fj["speedup"] = vmSecs > 0 ? interpSecs / vmSecs : 0.0;
  rep.root()["fuzz"] = std::move(fj);
  if (!options.quiet)
    std::printf(
        "sim bench fuzz     %ld seeds (quick matrix): %.2fs -> %.2fs "
        "(%.1fx end-to-end)\n",
        seeds, interpSecs, vmSecs, vmSecs > 0 ? interpSecs / vmSecs : 0.0);

  rep.root()["wall_seconds"] = total.seconds();

  const std::string sep =
      options.outDir.empty() || options.outDir.back() == '/' ? "" : "/";
  const std::string path = options.outDir + sep + "BENCH_sim.json";
  if (!rep.writeFile(path)) {
    std::fprintf(stderr, "mphls: cannot write %s\n", path.c_str());
    return 1;
  }
  if (!options.quiet) std::printf("wrote %s\n", path.c_str());
  return 0;
}

}  // namespace mphls::fuzz
