#include "fuzz/campaign.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>

#include "common/thread_pool.h"
#include "fuzz/corpus.h"
#include "obs/log.h"
#include "obs/metrics.h"

namespace mphls::fuzz {

namespace {

std::string seedName(std::uint64_t seed) {
  std::ostringstream oss;
  oss << "seed-";
  std::string digits = std::to_string(seed);
  for (std::size_t i = digits.size(); i < 6; ++i) oss << '0';
  oss << digits;
  return oss.str();
}

void countFailures(const ProgramVerdict& v, CampaignResult& r) {
  for (const PointFailure& f : v.failures) {
    if (f.kind == "mismatch") ++r.mismatches;
    else if (f.kind == "check") ++r.checkFailures;
    else if (f.kind == "error") ++r.errors;
    else if (f.kind == "vm-divergence" || f.kind == "vm-divergence-behav")
      ++r.divergences;
    else if (f.kind.rfind("sta-", 0) == 0) ++r.staFailures;
    else ++r.other;
  }
}

}  // namespace

CampaignResult runCampaign(const CampaignOptions& options) {
  WallTimer timer;
  CampaignResult result;
  result.seeds = options.seeds;
  result.pointsPerProgram = (int)options.diff.points.size();
  obs::Logger::global().info(
      "fuzz", "campaign start",
      {{"seeds", options.seeds},
       {"points", result.pointsPerProgram},
       {"seed_base", (unsigned long long)options.seedBase}});

  const std::size_t n = (std::size_t)std::max(options.seeds, 0);
  std::vector<std::string> sources(n);
  std::vector<ProgramVerdict> verdicts(n);

  // Live campaign counters. Global and monotonic, so the heartbeat (and
  // any --stats export) reads deltas from the values at campaign start.
  auto& mr = obs::MetricsRegistry::global();
  auto& cSeeds = mr.counter("fuzz.seeds_done");
  auto& cPoints = mr.counter("fuzz.points_run");
  auto& cSims = mr.counter("fuzz.simulations");
  auto& cMismatches = mr.counter("fuzz.mismatches");
  auto& cFailing = mr.counter("fuzz.failing_programs");
  auto& gCosimRate = mr.gauge("fuzz.cosims_per_sec");
  const std::uint64_t seeds0 = cSeeds.value();
  const std::uint64_t sims0 = cSims.value();
  const std::uint64_t mismatches0 = cMismatches.value();

  std::thread heartbeat;
  std::mutex hbMutex;
  std::condition_variable hbCv;
  bool hbStop = false;
  if (options.heartbeat && n > 0) {
    heartbeat = std::thread([&] {
      WallTimer hbTimer;
      std::unique_lock<std::mutex> lk(hbMutex);
      while (!hbCv.wait_for(lk, std::chrono::milliseconds(250),
                            [&] { return hbStop; })) {
        const auto done = (unsigned long long)(cSeeds.value() - seeds0);
        const auto sims = (unsigned long long)(cSims.value() - sims0);
        const auto mism =
            (unsigned long long)(cMismatches.value() - mismatches0);
        const double secs = hbTimer.seconds();
        const double cosimRate = secs > 0 ? (double)sims / secs : 0.0;
        gCosimRate.set(cosimRate);
        std::fprintf(stderr,
                     "\r\033[Kfuzz: %llu/%zu seeds (%.1f/s), %.0f "
                     "cosims/s, %llu mismatch(es)",
                     done, n, secs > 0 ? (double)done / secs : 0.0,
                     cosimRate, mism);
        std::fflush(stderr);
      }
      std::fprintf(stderr, "\r\033[K");  // erase the progress line
      std::fflush(stderr);
    });
  }

  // Phase 1 — the sweep, parallel over seeds. Every iteration writes only
  // its own slot, so results are identical at any thread count.
  const int workers = resolveJobs(options.jobs);
  std::unique_ptr<ThreadPool> pool;
  if (workers > 1) pool = std::make_unique<ThreadPool>(workers, "fuzz");
  parallelFor(pool.get(), n, [&](std::size_t i, int) {
    const std::uint64_t seed = options.seedBase + i;
    GenProgram prog = generateProgram(seed, options.gen);
    sources[i] = prog.render();
    verdicts[i] = runSource(sources[i], seed, options.diff);
    cSeeds.add();
    cPoints.add((std::uint64_t)verdicts[i].pointsRun);
    cSims.add((std::uint64_t)verdicts[i].simulations);
    std::uint64_t mm = 0;
    for (const PointFailure& f : verdicts[i].failures)
      if (f.kind == "mismatch") ++mm;
    if (mm > 0) cMismatches.add(mm);
    if (!verdicts[i].ok()) cFailing.add();
  });
  pool.reset();

  if (heartbeat.joinable()) {
    {
      std::lock_guard<std::mutex> lk(hbMutex);
      hbStop = true;
    }
    hbCv.notify_one();
    heartbeat.join();
  }

  // Phase 2 — aggregation, reduction and corpus capture, in seed order on
  // this thread (reduction shares no state across failures; the corpus
  // files it writes are named by seed, so order only affects log output).
  for (std::size_t i = 0; i < n; ++i) {
    ProgramVerdict& v = verdicts[i];
    result.pointsRun += v.pointsRun;
    result.simulations += v.simulations;
    if (v.ok()) continue;

    ++result.failedPrograms;
    countFailures(v, result);
    obs::Logger::global().warn(
        "fuzz", "failing seed",
        {{"seed", (unsigned long long)(options.seedBase + i)},
         {"kind", v.failures.front().kind},
         {"point", v.failures.front().pointLabel()},
         {"failing_points", v.failingPoints().size()}});

    FailureCase fc;
    fc.source = sources[i];
    fc.verdict = v;

    const std::uint64_t seed = options.seedBase + i;
    CorpusEntry entry;
    entry.name = seedName(seed);
    entry.seed = seed;
    entry.kind = v.failures.front().kind;
    entry.point = v.failures.front().pointLabel();
    entry.note = v.failures.front().detail;
    if (!options.corpusDir.empty())
      if (auto p = saveEntry(options.corpusDir, entry, fc.source))
        fc.corpusPath = *p;

    if (options.reduce && v.compiled) {
      // Re-check only the failing points while shrinking. A candidate
      // counts as still-failing only if it reproduces the original
      // failure *kind* — otherwise deleting statements can morph a
      // mismatch into an unrelated error (e.g. a load of a variable
      // whose initialization the reducer just removed) and the
      // minimized program would witness the wrong bug.
      DiffOptions rd = options.diff;
      rd.points = v.failingPoints();
      rd.stopAtFirstFailure = true;
      const std::string wantKind = v.failures.front().kind;
      GenProgram prog = generateProgram(seed, options.gen);
      auto stillFails = [&](const GenProgram& cand) {
        ProgramVerdict cv = runSource(cand.render(), seed, rd);
        if (!cv.compiled) return false;
        for (const PointFailure& f : cv.failures)
          if (f.kind == wantKind) return true;
        return false;
      };
      GenProgram reduced = reduceProgram(prog, stillFails, &fc.reduceStats,
                                         options.maxReduceAttempts);
      fc.reducedSource = reduced.render();
      if (!options.corpusDir.empty()) {
        CorpusEntry mini = entry;
        mini.name = entry.name + ".min";
        if (auto p = saveEntry(options.corpusDir, mini, fc.reducedSource))
          fc.reducedPath = *p;
      }
    }
    result.failures.push_back(std::move(fc));
  }

  result.wallSeconds = timer.seconds();
  gCosimRate.set(result.wallSeconds > 0
                     ? (double)result.simulations / result.wallSeconds
                     : 0.0);
  obs::Logger::global().info(
      "fuzz", "campaign done",
      {{"seeds", options.seeds},
       {"simulations", (unsigned long long)result.simulations},
       {"failing_programs", result.failedPrograms},
       {"mismatches", result.mismatches},
       {"wall_s", result.wallSeconds}});
  return result;
}

ReplayResult replayCorpus(const std::string& dir, const DiffOptions& diff,
                          int jobs) {
  ReplayResult result;
  const std::vector<CorpusEntry> entries = loadCorpus(dir);
  result.entries = (int)entries.size();
  std::vector<ProgramVerdict> verdicts(entries.size());

  const int workers = resolveJobs(jobs);
  std::unique_ptr<ThreadPool> pool;
  if (workers > 1) pool = std::make_unique<ThreadPool>(workers);
  parallelFor(pool.get(), entries.size(), [&](std::size_t i, int) {
    verdicts[i] = runSource(entries[i].source, entries[i].seed, diff);
  });
  pool.reset();

  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (!verdicts[i].ok()) ++result.failed;
    result.outcomes.push_back({entries[i].name, std::move(verdicts[i])});
  }
  return result;
}

JsonValue campaignReport(const CampaignOptions& options,
                         const CampaignResult& result,
                         const std::string& matrixName) {
  JsonValue root = JsonValue::object();
  root["benchmark"] = "fuzz_campaign";
  root["seed_base"] = (std::size_t)options.seedBase;
  root["seeds"] = result.seeds;
  root["matrix"] = matrixName;
  root["points_per_program"] = result.pointsPerProgram;
  root["trials"] = options.diff.trials;
  root["jobs"] = options.jobs;
  root["points_run"] = result.pointsRun;
  root["simulations"] = result.simulations;
  root["failing_programs"] = result.failedPrograms;
  root["mismatches"] = result.mismatches;
  root["check_failures"] = result.checkFailures;
  root["errors"] = result.errors;
  root["vm_divergences"] = result.divergences;
  root["sta_failures"] = result.staFailures;
  root["other_failures"] = result.other;
  root["reduced"] = options.reduce;
  root["engine"] = std::string(vm::engineKindName(options.diff.engine.kind));
  root["cross_check"] = options.diff.engine.crossCheck;
  root["wall_seconds"] = result.wallSeconds;
  root["seeds_per_sec"] =
      result.wallSeconds > 0 ? result.seeds / result.wallSeconds : 0.0;
  root["cosims_per_sec"] = result.wallSeconds > 0
                               ? result.simulations / result.wallSeconds
                               : 0.0;
  JsonValue failures = JsonValue::array();
  for (const FailureCase& fc : result.failures) {
    JsonValue f = JsonValue::object();
    f["seed"] = (std::size_t)fc.verdict.seed;
    f["first_kind"] = fc.verdict.failures.front().kind;
    f["first_point"] = fc.verdict.failures.front().pointLabel();
    f["note"] = fc.verdict.failures.front().detail;
    f["failing_points"] = (std::size_t)fc.verdict.failingPoints().size();
    if (!fc.corpusPath.empty()) f["corpus_path"] = fc.corpusPath;
    if (!fc.reducedPath.empty()) {
      f["reduced_path"] = fc.reducedPath;
      f["reduced_stmts"] = fc.reduceStats.finalStmts;
      f["reduce_attempts"] = fc.reduceStats.attempts;
    }
    failures.push(std::move(f));
  }
  root["failures"] = std::move(failures);
  return root;
}

}  // namespace mphls::fuzz
