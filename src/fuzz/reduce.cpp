#include "fuzz/reduce.h"

#include <optional>
#include <utility>

namespace mphls::fuzz {

namespace {

/// Address of a statement: descend through (list index, which child list)
/// pairs — 0 selects body, 1 selects elseBody — then `index` in the final
/// list. An empty descend addresses the program's top-level list.
struct StmtLoc {
  std::vector<std::pair<int, int>> descend;
  int index = 0;
};

struct Edit {
  enum class Kind {
    DeleteStmt,   ///< remove the statement (and its whole subtree)
    HoistBody,    ///< replace an If/loop by its body
    HoistElse,    ///< replace an If by its else-body
    DropElse,     ///< clear an If's else-body
    ShrinkTrip,   ///< set a loop's trip bound to `arg`
    DropLoopCond, ///< remove a while's data condition
    ExprToConst,  ///< replace the addressed expr node by constant `arg`
    ExprToChild,  ///< replace the addressed expr node by child `arg`
    DropDecl,     ///< remove decl `index` from list `arg` (0 in/1 out/2 var)
  };

  Kind kind;
  StmtLoc loc;
  std::vector<int> exprPath;
  int arg = 0;
};

std::vector<GenStmt>* listFor(GenProgram& p,
                              const std::vector<std::pair<int, int>>& d) {
  std::vector<GenStmt>* list = &p.stmts;
  for (auto [idx, which] : d) {
    if (idx < 0 || (std::size_t)idx >= list->size()) return nullptr;
    GenStmt& s = (*list)[(std::size_t)idx];
    list = which == 0 ? &s.body : &s.elseBody;
  }
  return list;
}

GenStmt* stmtAt(GenProgram& p, const StmtLoc& loc) {
  std::vector<GenStmt>* list = listFor(p, loc.descend);
  if (!list || loc.index < 0 || (std::size_t)loc.index >= list->size())
    return nullptr;
  return &(*list)[(std::size_t)loc.index];
}

GenExpr* exprAt(GenExpr& root, const std::vector<int>& path) {
  GenExpr* e = &root;
  for (int k : path) {
    if (k < 0 || (std::size_t)k >= e->kids.size()) return nullptr;
    e = &e->kids[(std::size_t)k];
  }
  return e;
}

/// The statement's editable expression, if it has one.
GenExpr* stmtExpr(GenStmt& s) {
  switch (s.kind) {
    case GenStmt::Kind::Assign:
    case GenStmt::Kind::If:
      return &s.expr;
    case GenStmt::Kind::While:
      return s.hasCond ? &s.expr : nullptr;
    case GenStmt::Kind::DoUntil:
      return nullptr;
  }
  return nullptr;
}

void collectExprEdits(const GenExpr& e, const StmtLoc& loc,
                      std::vector<int>& path, std::vector<Edit>& out) {
  if (e.kind != GenExpr::Kind::Const) {
    for (int k = 0; k < (int)e.kids.size(); ++k)
      out.push_back({Edit::Kind::ExprToChild, loc, path, k});
    out.push_back({Edit::Kind::ExprToConst, loc, path, 0});
    out.push_back({Edit::Kind::ExprToConst, loc, path, 1});
  }
  for (int k = 0; k < (int)e.kids.size(); ++k) {
    path.push_back(k);
    collectExprEdits(e.kids[(std::size_t)k], loc, path, out);
    path.pop_back();
  }
}

void collectStmtEdits(const std::vector<GenStmt>& list,
                      std::vector<std::pair<int, int>>& descend,
                      std::vector<Edit>& structural,
                      std::vector<Edit>& exprEdits) {
  for (int i = 0; i < (int)list.size(); ++i) {
    const GenStmt& s = list[(std::size_t)i];
    StmtLoc loc{descend, i};
    structural.push_back({Edit::Kind::DeleteStmt, loc, {}, 0});
    switch (s.kind) {
      case GenStmt::Kind::Assign:
        break;
      case GenStmt::Kind::If:
        structural.push_back({Edit::Kind::HoistBody, loc, {}, 0});
        if (!s.elseBody.empty()) {
          structural.push_back({Edit::Kind::HoistElse, loc, {}, 0});
          structural.push_back({Edit::Kind::DropElse, loc, {}, 0});
        }
        break;
      case GenStmt::Kind::While:
        structural.push_back({Edit::Kind::HoistBody, loc, {}, 0});
        if (s.trip > 1) structural.push_back({Edit::Kind::ShrinkTrip, loc, {}, 1});
        if (s.hasCond)
          structural.push_back({Edit::Kind::DropLoopCond, loc, {}, 0});
        break;
      case GenStmt::Kind::DoUntil:
        structural.push_back({Edit::Kind::HoistBody, loc, {}, 0});
        if (s.trip > 1) structural.push_back({Edit::Kind::ShrinkTrip, loc, {}, 1});
        break;
    }
    if (const GenExpr* e = stmtExpr(const_cast<GenStmt&>(s))) {
      std::vector<int> path;
      collectExprEdits(*e, loc, path, exprEdits);
    }
    descend.push_back({i, 0});
    collectStmtEdits(s.body, descend, structural, exprEdits);
    descend.pop_back();
    if (!s.elseBody.empty()) {
      descend.push_back({i, 1});
      collectStmtEdits(s.elseBody, descend, structural, exprEdits);
      descend.pop_back();
    }
  }
}

void collectNames(const GenStmt& s, std::vector<std::string>& refs,
                  std::vector<std::string>& targets);

void collectExprNames(const GenExpr& e, std::vector<std::string>& refs) {
  if (e.kind == GenExpr::Kind::Ref) refs.push_back(e.name);
  for (const GenExpr& k : e.kids) collectExprNames(k, refs);
}

void collectNames(const GenStmt& s, std::vector<std::string>& refs,
                  std::vector<std::string>& targets) {
  if (s.kind == GenStmt::Kind::Assign) targets.push_back(s.target);
  if (s.kind != GenStmt::Kind::DoUntil &&
      (s.kind != GenStmt::Kind::While || s.hasCond))
    collectExprNames(s.expr, refs);
  for (const GenStmt& b : s.body) collectNames(b, refs, targets);
  for (const GenStmt& b : s.elseBody) collectNames(b, refs, targets);
}

bool contains(const std::vector<std::string>& v, const std::string& n) {
  for (const auto& s : v)
    if (s == n) return true;
  return false;
}

/// Edits that remove declarations no statement references. (A referenced
/// decl could also be offered — the predicate would reject the
/// now-uncompilable candidate — but that wastes expensive oracle calls.)
void collectDeclEdits(const GenProgram& p, std::vector<Edit>& out) {
  std::vector<std::string> refs, targets;
  for (const GenStmt& s : p.stmts) collectNames(s, refs, targets);
  const std::vector<GenProgram::Decl>* lists[3] = {&p.ins, &p.outs, &p.vars};
  for (int which = 0; which < 3; ++which)
    for (int i = 0; i < (int)lists[which]->size(); ++i) {
      const std::string& n = (*lists[which])[(std::size_t)i].name;
      if (!contains(refs, n) && !contains(targets, n))
        out.push_back({Edit::Kind::DropDecl, StmtLoc{{}, i}, {}, which});
    }
}

bool applyEdit(GenProgram& p, const Edit& e) {
  switch (e.kind) {
    case Edit::Kind::DeleteStmt: {
      std::vector<GenStmt>* list = listFor(p, e.loc.descend);
      if (!list || (std::size_t)e.loc.index >= list->size()) return false;
      list->erase(list->begin() + e.loc.index);
      return true;
    }
    case Edit::Kind::HoistBody:
    case Edit::Kind::HoistElse: {
      std::vector<GenStmt>* list = listFor(p, e.loc.descend);
      if (!list || (std::size_t)e.loc.index >= list->size()) return false;
      GenStmt& s = (*list)[(std::size_t)e.loc.index];
      if (s.kind == GenStmt::Kind::Assign) return false;
      std::vector<GenStmt> hoisted = std::move(
          e.kind == Edit::Kind::HoistBody ? s.body : s.elseBody);
      list->erase(list->begin() + e.loc.index);
      list->insert(list->begin() + e.loc.index,
                   std::make_move_iterator(hoisted.begin()),
                   std::make_move_iterator(hoisted.end()));
      return true;
    }
    case Edit::Kind::DropElse: {
      GenStmt* s = stmtAt(p, e.loc);
      if (!s || s->elseBody.empty()) return false;
      s->elseBody.clear();
      return true;
    }
    case Edit::Kind::ShrinkTrip: {
      GenStmt* s = stmtAt(p, e.loc);
      if (!s || s->trip <= (std::uint64_t)e.arg) return false;
      s->trip = (std::uint64_t)e.arg;
      return true;
    }
    case Edit::Kind::DropLoopCond: {
      GenStmt* s = stmtAt(p, e.loc);
      if (!s || !s->hasCond) return false;
      s->hasCond = false;
      s->expr = GenExpr::makeConst(0);
      return true;
    }
    case Edit::Kind::ExprToConst:
    case Edit::Kind::ExprToChild: {
      GenStmt* s = stmtAt(p, e.loc);
      if (!s) return false;
      GenExpr* root = stmtExpr(*s);
      if (!root) return false;
      GenExpr* node = exprAt(*root, e.exprPath);
      if (!node) return false;
      if (e.kind == Edit::Kind::ExprToConst) {
        if (node->kind == GenExpr::Kind::Const) return false;
        *node = GenExpr::makeConst((std::uint64_t)e.arg);
      } else {
        if ((std::size_t)e.arg >= node->kids.size()) return false;
        GenExpr child = std::move(node->kids[(std::size_t)e.arg]);
        *node = std::move(child);
      }
      return true;
    }
    case Edit::Kind::DropDecl: {
      std::vector<GenProgram::Decl>* lists[3] = {&p.ins, &p.outs, &p.vars};
      std::vector<GenProgram::Decl>* list = lists[e.arg];
      if ((std::size_t)e.loc.index >= list->size()) return false;
      list->erase(list->begin() + e.loc.index);
      return true;
    }
  }
  return false;
}

std::vector<Edit> collectEdits(const GenProgram& p) {
  // Structural edits first (big deletions shrink fastest), then loop/expr
  // simplifications, then dead declarations.
  std::vector<Edit> structural, exprEdits;
  std::vector<std::pair<int, int>> descend;
  collectStmtEdits(p.stmts, descend, structural, exprEdits);
  std::vector<Edit> edits = std::move(structural);
  edits.insert(edits.end(), std::make_move_iterator(exprEdits.begin()),
               std::make_move_iterator(exprEdits.end()));
  collectDeclEdits(p, edits);
  return edits;
}

}  // namespace

GenProgram reduceProgram(const GenProgram& program,
                         const FailPredicate& stillFails, ReduceStats* stats,
                         int maxAttempts) {
  ReduceStats local;
  ReduceStats& st = stats ? *stats : local;
  st.initialStmts = program.stmtCount();
  st.initialBytes = program.render().size();

  GenProgram cur = program;
  ++st.attempts;
  if (!stillFails(cur)) {
    st.finalStmts = st.initialStmts;
    st.finalBytes = st.initialBytes;
    return cur;
  }

  bool progress = true;
  while (progress && st.attempts < maxAttempts) {
    progress = false;
    for (const Edit& e : collectEdits(cur)) {
      GenProgram cand = cur;
      if (!applyEdit(cand, e)) continue;
      ++st.attempts;
      if (stillFails(cand)) {
        cur = std::move(cand);
        ++st.accepted;
        progress = true;
        break;  // restart enumeration on the smaller program
      }
      if (st.attempts >= maxAttempts) break;
    }
  }

  st.finalStmts = cur.stmtCount();
  st.finalBytes = cur.render().size();
  return cur;
}

}  // namespace mphls::fuzz
