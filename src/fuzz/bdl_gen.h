// Reusable random-BDL program generator for differential fuzzing.
//
// Extracted and generalized from the fixed-seed property suite
// (tests/test_property.cpp): a deterministic generator that produces
// well-formed BDL programs with nested control flow (if/else, bounded
// do-until loops, zero-trip while loops), a configurable bit-width mix,
// and a configurable operator mix including division/modulus and the ops
// that become multicycle under OpLatencyModel::multiCycle (mul/div).
//
// Programs are built as a small statement/expression tree (GenProgram) and
// rendered to BDL text, so the delta-debugging reducer (fuzz/reduce.h) can
// remove statements, hoist blocks and simplify expressions structurally
// instead of hacking on text. Rendering is a pure function of the tree:
// the same seed and options always produce byte-identical source.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mphls::fuzz {

/// Deterministic 64-bit generator (splitmix64). Replaces the property
/// suite's private xorshift whose multiplicative seeding collapsed related
/// seeds onto correlated streams; splitmix64 gives full 64-bit avalanche
/// on the seed, so seed k and seed k+1 share nothing.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : s_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (s_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
  /// Uniform-ish draw in [0, n); n must be positive.
  std::size_t below(std::size_t n) { return (std::size_t)(next() % n); }
  bool chance(int percent) { return below(100) < (std::size_t)percent; }

 private:
  std::uint64_t s_;
};

// ------------------------------------------------------------ program tree

/// An expression node. Binary operators carry their BDL spelling ("+",
/// "%", ">>", "&&", ...); casts carry the kind ("zext"/"sext"/"trunc")
/// and target width; ternaries have three children (cond, then, else).
struct GenExpr {
  enum class Kind { Const, Ref, Cast, Binary, Ternary };

  Kind kind = Kind::Const;
  std::uint64_t value = 0;  ///< Const
  std::string name;         ///< Ref: variable/port name
  std::string op;           ///< Binary spelling, or cast kind
  int castWidth = 0;        ///< Cast target width
  std::vector<GenExpr> kids;

  [[nodiscard]] static GenExpr makeConst(std::uint64_t v);
  [[nodiscard]] static GenExpr makeRef(std::string name);

  void render(std::string& out) const;
  [[nodiscard]] std::string str() const;
  /// Total node count (used by the reducer's progress metric).
  [[nodiscard]] std::size_t size() const;
};

/// A statement node. Loops declare and drive their own counter variable
/// (`counter`), so deleting a loop removes every trace of it:
///   DoUntil:  var k: uint<4>; k = 0; do { body; k = k + 1; } until (k == trip);
///   While:    var k: uint<4>; k = 0; while ((k < trip) [&& cond]) { body; k = k + 1; }
/// A While with trip == 0 (or a false data condition) executes zero times.
struct GenStmt {
  enum class Kind { Assign, If, While, DoUntil };

  Kind kind = Kind::Assign;
  std::string target;            ///< Assign target
  GenExpr expr;                  ///< Assign rhs; If/While data condition
  std::vector<GenStmt> body;     ///< If-then / loop body
  std::vector<GenStmt> elseBody; ///< If-else
  std::string counter;           ///< loop counter name
  int counterWidth = 4;
  std::uint64_t trip = 1;        ///< loop trip bound
  bool hasCond = false;          ///< While: AND a data condition into the guard

  void render(std::string& out, int depth) const;
  /// Statements in this subtree, inclusive.
  [[nodiscard]] std::size_t size() const;
};

/// A generated program: port/variable declarations plus a statement list.
struct GenProgram {
  struct Decl {
    std::string name;
    int width = 8;
  };

  std::string procName = "fuzz";
  std::vector<Decl> ins, outs, vars;
  std::vector<GenStmt> stmts;

  /// Render to BDL source text (deterministic; byte-identical per tree).
  [[nodiscard]] std::string render() const;
  [[nodiscard]] std::vector<std::string> inputNames() const;
  /// Total statement count across the whole tree.
  [[nodiscard]] std::size_t stmtCount() const;
};

// ------------------------------------------------------------- generation

/// Knobs for the generator. The defaults reproduce the flavor of the
/// original property-suite generator (small programs, widths 4..32, full
/// arithmetic mix) with the new constructs enabled.
struct GenOptions {
  int minInputs = 2, maxInputs = 4;
  int minOutputs = 1, maxOutputs = 2;
  int minVars = 2, maxVars = 5;
  int minStmts = 3, maxStmts = 8;
  /// Maximum control-flow nesting depth (if/loop inside if/loop ...).
  int maxStmtDepth = 2;
  /// Maximum expression tree depth.
  int maxExprDepth = 3;
  /// Bit widths drawn for ports and variables.
  std::vector<int> widths = {4, 8, 12, 16, 24, 32};
  /// Include / and % (and their multicycle behavior under --multicycle).
  bool divMod = true;
  /// Include * (2-step under the multicycle latency model).
  bool mul = true;
  /// Include zext/sext/trunc casts.
  bool casts = true;
  /// Include ?: selections.
  bool ternary = true;
  /// Include shifts (constant and variable amounts).
  bool shifts = true;
  /// Include zero-trip-capable while loops in the statement mix.
  bool whileLoops = true;
  /// Maximum loop trip bound (do-until draws in [1, maxTrip], while in
  /// [0, maxTrip] — zero means the loop body never runs).
  int maxTrip = 5;
};

/// Generate a random well-formed program. All variables are initialized
/// before the statement soup; every output is assigned up front so each
/// output is written on every path and readable in later expressions.
[[nodiscard]] GenProgram generateProgram(std::uint64_t seed,
                                         const GenOptions& options = {});

/// Deterministic input patterns for differential trials: trial 0 is
/// all-zeros, trial 1 all-ones, later trials are seeded random values.
[[nodiscard]] std::map<std::string, std::uint64_t> randomInputs(
    const std::vector<std::string>& names, std::uint64_t seed, int trial);

}  // namespace mphls::fuzz
