#include "common/bench_report.h"

#include <cmath>
#include <cstdio>
#include <fstream>

namespace mphls {

JsonValue JsonValue::object() {
  JsonValue v;
  v.kind_ = Kind::Object;
  return v;
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.kind_ = Kind::Array;
  return v;
}

JsonValue& JsonValue::operator[](const std::string& key) {
  if (kind_ == Kind::Null) kind_ = Kind::Object;
  for (auto& [k, v] : obj_)
    if (k == key) return v;
  obj_.emplace_back(key, JsonValue());
  return obj_.back().second;
}

JsonValue& JsonValue::push(JsonValue v) {
  if (kind_ == Kind::Null) kind_ = Kind::Array;
  arr_.push_back(std::move(v));
  return arr_.back();
}

namespace {

void appendEscaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void appendNumber(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";  // JSON has no inf/nan
    return;
  }
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  // Prefer the shortest representation that round-trips.
  for (int prec = 6; prec < 17; ++prec) {
    char probe[40];
    std::snprintf(probe, sizeof probe, "%.*g", prec, v);
    double back = 0;
    std::sscanf(probe, "%lf", &back);
    if (back == v) {
      out += probe;
      return;
    }
  }
  out += buf;
}

}  // namespace

void JsonValue::dumpTo(std::string& out, int depth) const {
  const std::string pad(static_cast<std::size_t>(depth) * 2, ' ');
  const std::string padIn(static_cast<std::size_t>(depth + 1) * 2, ' ');
  switch (kind_) {
    case Kind::Null: out += "null"; break;
    case Kind::Bool: out += bool_ ? "true" : "false"; break;
    case Kind::Number: appendNumber(out, num_); break;
    case Kind::String: appendEscaped(out, str_); break;
    case Kind::Array:
      if (arr_.empty()) {
        out += "[]";
        break;
      }
      out += "[\n";
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        out += padIn;
        arr_[i].dumpTo(out, depth + 1);
        if (i + 1 < arr_.size()) out += ',';
        out += '\n';
      }
      out += pad + "]";
      break;
    case Kind::Object:
      if (obj_.empty()) {
        out += "{}";
        break;
      }
      out += "{\n";
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        out += padIn;
        appendEscaped(out, obj_[i].first);
        out += ": ";
        obj_[i].second.dumpTo(out, depth + 1);
        if (i + 1 < obj_.size()) out += ',';
        out += '\n';
      }
      out += pad + "}";
      break;
  }
}

std::string JsonValue::dump() const {
  std::string out;
  dumpTo(out, 0);
  out += '\n';
  return out;
}

BenchReporter::BenchReporter(const std::string& benchmarkName) {
  root_ = JsonValue::object();
  root_["benchmark"] = benchmarkName;
}

double BenchReporter::timeBest(int repeats, const std::function<void()>& fn) {
  if (repeats < 1) repeats = 1;
  double best = -1;
  for (int r = 0; r < repeats; ++r) {
    WallTimer t;
    fn();
    double s = t.seconds();
    if (best < 0 || s < best) best = s;
  }
  return best;
}

bool BenchReporter::writeFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << json();
  return static_cast<bool>(out);
}

}  // namespace mphls
