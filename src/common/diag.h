// Diagnostics: source locations and error reporting for the BDL frontend
// and internal consistency checks.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

namespace mphls {

/// A position in a BDL source text (1-based line/column; 0 means unknown).
struct SourceLoc {
  int line = 0;
  int column = 0;

  [[nodiscard]] bool known() const { return line > 0; }
  [[nodiscard]] std::string str() const;
};

enum class Severity { Note, Warning, Error };

/// One reported message.
struct Diagnostic {
  Severity severity = Severity::Error;
  SourceLoc loc;
  std::string message;

  [[nodiscard]] std::string str() const;
};

/// Collects diagnostics produced while compiling a specification.
///
/// The frontend reports problems here instead of throwing so a single run
/// can surface every error in the input. `ok()` gates the pipeline.
class DiagEngine {
 public:
  void error(SourceLoc loc, std::string msg) {
    diags_.push_back({Severity::Error, loc, std::move(msg)});
  }
  void warning(SourceLoc loc, std::string msg) {
    diags_.push_back({Severity::Warning, loc, std::move(msg)});
  }
  void note(SourceLoc loc, std::string msg) {
    diags_.push_back({Severity::Note, loc, std::move(msg)});
  }

  [[nodiscard]] bool ok() const {
    for (const auto& d : diags_)
      if (d.severity == Severity::Error) return false;
    return true;
  }
  [[nodiscard]] std::size_t errorCount() const {
    std::size_t n = 0;
    for (const auto& d : diags_)
      if (d.severity == Severity::Error) ++n;
    return n;
  }
  [[nodiscard]] const std::vector<Diagnostic>& all() const { return diags_; }
  [[nodiscard]] std::string summary() const;

 private:
  std::vector<Diagnostic> diags_;
};

/// Thrown on violated internal invariants (never on bad user input).
class InternalError : public std::logic_error {
 public:
  explicit InternalError(const std::string& what) : std::logic_error(what) {}
};

/// MPHLS_CHECK(cond, msg): internal invariant check that survives NDEBUG.
#define MPHLS_CHECK(cond, msg)                                       \
  do {                                                               \
    if (!(cond)) {                                                   \
      std::ostringstream oss_;                                       \
      oss_ << "internal error at " << __FILE__ << ":" << __LINE__    \
           << ": " << msg;                                           \
      throw ::mphls::InternalError(oss_.str());                      \
    }                                                                \
  } while (false)

}  // namespace mphls
