// Strongly-typed integer identifiers.
//
// Every IR entity (operation, value, block, variable, port, ...) is referred
// to by index into an owning container. Raw `int` indices are error prone:
// passing an OpId where a ValueId is expected compiles silently. The Id<Tag>
// template makes each id family a distinct type while keeping the cost of a
// plain integer.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <ostream>

namespace mphls {

/// A strongly typed, index-like identifier. `Tag` is any (possibly
/// incomplete) type used purely to distinguish id families.
template <typename Tag>
class Id {
 public:
  using underlying_type = std::uint32_t;
  static constexpr underlying_type kInvalid =
      std::numeric_limits<underlying_type>::max();

  constexpr Id() = default;
  constexpr explicit Id(underlying_type v) : value_(v) {}
  constexpr explicit Id(std::size_t v)
      : value_(static_cast<underlying_type>(v)) {}
  constexpr explicit Id(int v) : value_(static_cast<underlying_type>(v)) {}

  /// True when this id refers to an actual entity.
  [[nodiscard]] constexpr bool valid() const { return value_ != kInvalid; }
  [[nodiscard]] constexpr underlying_type get() const { return value_; }
  /// Index form, for use with operator[] on vectors.
  [[nodiscard]] constexpr std::size_t index() const { return value_; }

  static constexpr Id invalid() { return Id(); }

  friend constexpr bool operator==(Id a, Id b) { return a.value_ == b.value_; }
  friend constexpr bool operator!=(Id a, Id b) { return a.value_ != b.value_; }
  friend constexpr bool operator<(Id a, Id b) { return a.value_ < b.value_; }
  friend constexpr bool operator>(Id a, Id b) { return a.value_ > b.value_; }
  friend constexpr bool operator<=(Id a, Id b) { return a.value_ <= b.value_; }
  friend constexpr bool operator>=(Id a, Id b) { return a.value_ >= b.value_; }

  friend std::ostream& operator<<(std::ostream& os, Id id) {
    if (!id.valid()) return os << "<invalid>";
    return os << id.value_;
  }

 private:
  underlying_type value_ = kInvalid;
};

struct OpTag;
struct ValueTag;
struct BlockTag;
struct VarTag;
struct PortTag;
struct FuTag;
struct RegTag;
struct MuxTag;
struct BusTag;
struct NetTag;
struct StateTag;
struct CompTag;

using OpId = Id<OpTag>;        ///< An operation node in a CDFG block.
using ValueId = Id<ValueTag>;  ///< An SSA-like temporary inside a block.
using BlockId = Id<BlockTag>;  ///< A basic block.
using VarId = Id<VarTag>;      ///< A named storage location (variable).
using PortId = Id<PortTag>;    ///< A top-level input/output port.
using FuId = Id<FuTag>;        ///< An allocated functional-unit instance.
using RegId = Id<RegTag>;      ///< An allocated register instance.
using MuxId = Id<MuxTag>;      ///< A multiplexer instance.
using BusId = Id<BusTag>;      ///< A shared bus instance.
using NetId = Id<NetTag>;      ///< A net in the RTL netlist.
using StateId = Id<StateTag>;  ///< A controller FSM state.
using CompId = Id<CompTag>;    ///< A hardware-library component kind.

}  // namespace mphls

namespace std {
template <typename Tag>
struct hash<mphls::Id<Tag>> {
  size_t operator()(mphls::Id<Tag> id) const noexcept {
    return std::hash<typename mphls::Id<Tag>::underlying_type>()(id.get());
  }
};
}  // namespace std
