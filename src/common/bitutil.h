// Bit-level helpers shared by the IR interpreter, the RTL simulator and
// the controller encoders. All datapath arithmetic in mphls is performed
// on two's-complement values truncated to a declared bit width, exactly
// as the synthesized hardware would compute it.
#pragma once

#include <cstdint>
#include <string>

namespace mphls {

/// Maximum supported operand width. 64 keeps host arithmetic exact.
inline constexpr int kMaxWidth = 64;

/// Number of bits needed to represent `n` distinct states (>= 1).
[[nodiscard]] int bitsForStates(std::uint64_t n);

/// True when `v` is a (positive) power of two.
[[nodiscard]] bool isPowerOfTwo(std::uint64_t v);

/// floor(log2(v)); requires v > 0.
[[nodiscard]] int log2Floor(std::uint64_t v);

/// All-ones mask of `width` bits (width in [1, 64]).
[[nodiscard]] std::uint64_t maskBits(int width);

/// Truncate `v` to `width` bits (unsigned view).
[[nodiscard]] std::uint64_t truncBits(std::uint64_t v, int width);

/// Sign-extend the low `width` bits of `v` to a signed 64-bit value.
[[nodiscard]] std::int64_t signExtend(std::uint64_t v, int width);

/// Render the low `width` bits of `v` as a binary string, MSB first.
[[nodiscard]] std::string toBinary(std::uint64_t v, int width);

}  // namespace mphls
