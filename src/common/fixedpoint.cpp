#include "common/fixedpoint.h"

#include <cmath>

#include "common/diag.h"

namespace mphls {

std::uint64_t toFixed(double x, int fracBits) {
  MPHLS_CHECK(x >= 0.0, "toFixed requires non-negative input");
  MPHLS_CHECK(fracBits >= 0 && fracBits < 63, "bad fracBits");
  return static_cast<std::uint64_t>(
      std::llround(x * static_cast<double>(1ULL << fracBits)));
}

double fromFixed(std::uint64_t raw, int fracBits) {
  MPHLS_CHECK(fracBits >= 0 && fracBits < 63, "bad fracBits");
  return static_cast<double>(raw) / static_cast<double>(1ULL << fracBits);
}

std::uint64_t fixedMul(std::uint64_t a, std::uint64_t b, int fracBits) {
  return (a * b) >> fracBits;
}

std::uint64_t fixedDiv(std::uint64_t a, std::uint64_t b, int fracBits) {
  MPHLS_CHECK(b != 0, "fixedDiv by zero");
  return (a << fracBits) / b;
}

}  // namespace mphls
