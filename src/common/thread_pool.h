// A small work-stealing thread pool for the synthesis-throughput layer.
//
// Design-space exploration synthesizes many independent design points
// (Section 1.2: "several designs for the same specification in a
// reasonable amount of time"); the pool lets those points run
// concurrently. Each worker owns a deque: it pushes and pops its own
// work LIFO (cache-warm) and steals FIFO from the other workers when its
// deque runs dry, so an uneven sweep (e.g. branch-and-bound points next
// to list-scheduled ones) still keeps every thread busy.
//
// Determinism contract: the pool schedules *execution*, never *results*.
// Callers hand every task a distinct output slot (see parallelFor), so
// the values produced are identical at any thread count.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace mphls {

class ThreadPool {
 public:
  /// Spawns `numThreads` workers (clamped to >= 1). Each worker registers
  /// a stable tracer track named "<namePrefix>-<index>" so spans executed
  /// on the pool land on named per-worker lanes in the trace viewer.
  explicit ThreadPool(int numThreads, std::string namePrefix = "pool");

  /// Joins all workers after draining the queues.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a callable; returns a future for its result. Tasks submitted
  /// from a worker thread go to that worker's own deque (LIFO), others are
  /// distributed round-robin.
  template <typename F>
  auto submit(F f) -> std::future<decltype(f())> {
    using R = decltype(f());
    auto task = std::make_shared<std::packaged_task<R()>>(std::move(f));
    std::future<R> fut = task->get_future();
    push([task] { (*task)(); });
    return fut;
  }

  [[nodiscard]] int size() const { return static_cast<int>(threads_.size()); }

  /// Index of the calling thread within this pool, or -1 for outsiders.
  [[nodiscard]] int currentWorker() const;

  /// Stable tracer track name of worker `i` ("<namePrefix>-<i>").
  [[nodiscard]] std::string workerName(int i) const;

  /// Tracer track id (obs::Tracer tid) of worker `i`, or -1 if the worker
  /// has not started yet (registration happens on the worker thread).
  [[nodiscard]] int workerTraceTid(int i) const;

  /// std::thread::hardware_concurrency with a >= 1 floor.
  [[nodiscard]] static int hardwareConcurrency();

 private:
  struct WorkerQueue {
    std::mutex m;
    std::deque<std::function<void()>> q;
  };

  void push(std::function<void()> f);
  bool popOrSteal(std::size_t self, std::function<void()>& out);
  void workerLoop(std::size_t idx);

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::string namePrefix_;
  /// Tracer tid per worker; written once by the worker thread on startup.
  std::vector<std::atomic<int>> traceTids_;
  std::vector<std::thread> threads_;
  std::mutex wakeMutex_;
  std::condition_variable wake_;
  std::atomic<bool> stop_{false};
  std::atomic<std::size_t> pending_{0};   ///< queued, not yet popped
  std::atomic<std::size_t> nextQueue_{0}; ///< round-robin submission cursor
};

/// Resolve a `jobs` option to a worker count: <= 0 means "one per hardware
/// thread", anything else is taken literally.
[[nodiscard]] int resolveJobs(int jobs);

/// Run `fn(index, worker)` for every index in [0, n), spread across `pool`.
/// `worker` is the pool worker index that executed the iteration (0 on the
/// serial path). Blocks until all iterations finish; the first exception
/// thrown by any iteration is rethrown on the caller after the remaining
/// iterations complete. Passing a null pool runs every iteration inline on
/// the caller — the jobs=1 bypass. Not reentrant from inside a pool worker.
void parallelFor(ThreadPool* pool, std::size_t n,
                 const std::function<void(std::size_t, int)>& fn);

}  // namespace mphls
