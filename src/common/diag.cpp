#include "common/diag.h"

namespace mphls {

std::string SourceLoc::str() const {
  if (!known()) return "<unknown>";
  std::ostringstream oss;
  oss << line << ":" << column;
  return oss.str();
}

std::string Diagnostic::str() const {
  std::ostringstream oss;
  switch (severity) {
    case Severity::Note: oss << "note"; break;
    case Severity::Warning: oss << "warning"; break;
    case Severity::Error: oss << "error"; break;
  }
  oss << " at " << loc.str() << ": " << message;
  return oss.str();
}

std::string DiagEngine::summary() const {
  std::ostringstream oss;
  for (const auto& d : diags_) oss << d.str() << "\n";
  return oss.str();
}

}  // namespace mphls
