#include "common/thread_pool.h"

#include <exception>

#include "obs/trace.h"

namespace mphls {

namespace {

// Worker identity for currentWorker(): which pool (if any) owns the calling
// thread, and its index there.
thread_local const ThreadPool* tlsPool = nullptr;
thread_local int tlsWorker = -1;

}  // namespace

ThreadPool::ThreadPool(int numThreads, std::string namePrefix)
    : namePrefix_(std::move(namePrefix)),
      traceTids_(static_cast<std::size_t>(numThreads < 1 ? 1 : numThreads)) {
  if (numThreads < 1) numThreads = 1;
  for (auto& t : traceTids_) t.store(-1, std::memory_order_relaxed);
  queues_.reserve(static_cast<std::size_t>(numThreads));
  for (int i = 0; i < numThreads; ++i)
    queues_.push_back(std::make_unique<WorkerQueue>());
  threads_.reserve(static_cast<std::size_t>(numThreads));
  for (int i = 0; i < numThreads; ++i)
    threads_.emplace_back(
        [this, i] { workerLoop(static_cast<std::size_t>(i)); });
}

ThreadPool::~ThreadPool() {
  stop_.store(true, std::memory_order_release);
  {
    // Pairs with the predicate re-check under wakeMutex_ in workerLoop so
    // no worker can miss the stop signal between its check and its wait.
    std::lock_guard<std::mutex> lk(wakeMutex_);
  }
  wake_.notify_all();
  for (auto& t : threads_) t.join();
}

int ThreadPool::currentWorker() const {
  return tlsPool == this ? tlsWorker : -1;
}

std::string ThreadPool::workerName(int i) const {
  return namePrefix_ + "-" + std::to_string(i);
}

int ThreadPool::workerTraceTid(int i) const {
  if (i < 0 || i >= size()) return -1;
  return traceTids_[static_cast<std::size_t>(i)].load(
      std::memory_order_acquire);
}

int ThreadPool::hardwareConcurrency() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

void ThreadPool::push(std::function<void()> f) {
  // A worker submitting from inside a task keeps the work local (LIFO);
  // outside submitters deal queues round-robin.
  std::size_t target;
  if (tlsPool == this) {
    target = static_cast<std::size_t>(tlsWorker);
  } else {
    target = nextQueue_.fetch_add(1, std::memory_order_relaxed) %
             queues_.size();
  }
  {
    std::lock_guard<std::mutex> lk(queues_[target]->m);
    queues_[target]->q.push_back(std::move(f));
  }
  pending_.fetch_add(1, std::memory_order_release);
  wake_.notify_one();
}

bool ThreadPool::popOrSteal(std::size_t self, std::function<void()>& out) {
  // Own deque first, newest-first.
  {
    WorkerQueue& mine = *queues_[self];
    std::lock_guard<std::mutex> lk(mine.m);
    if (!mine.q.empty()) {
      out = std::move(mine.q.back());
      mine.q.pop_back();
      return true;
    }
  }
  // Steal oldest-first from the other workers, starting just after self so
  // victims rotate instead of everyone hammering worker 0.
  for (std::size_t k = 1; k < queues_.size(); ++k) {
    WorkerQueue& victim = *queues_[(self + k) % queues_.size()];
    std::lock_guard<std::mutex> lk(victim.m);
    if (!victim.q.empty()) {
      out = std::move(victim.q.front());
      victim.q.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::workerLoop(std::size_t idx) {
  tlsPool = this;
  tlsWorker = static_cast<int>(idx);
  traceTids_[idx].store(
      obs::Tracer::global().setThreadName(workerName(static_cast<int>(idx))),
      std::memory_order_release);
  for (;;) {
    std::function<void()> task;
    if (popOrSteal(idx, task)) {
      pending_.fetch_sub(1, std::memory_order_acq_rel);
      task();
      continue;
    }
    std::unique_lock<std::mutex> lk(wakeMutex_);
    wake_.wait(lk, [this] {
      return stop_.load(std::memory_order_acquire) ||
             pending_.load(std::memory_order_acquire) > 0;
    });
    if (stop_.load(std::memory_order_acquire) &&
        pending_.load(std::memory_order_acquire) == 0)
      return;
  }
}

int resolveJobs(int jobs) {
  return jobs <= 0 ? ThreadPool::hardwareConcurrency() : jobs;
}

void parallelFor(ThreadPool* pool, std::size_t n,
                 const std::function<void(std::size_t, int)>& fn) {
  if (n == 0) return;
  if (pool == nullptr || pool->size() <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i, 0);
    return;
  }

  // Dynamic self-scheduling: each runner pulls the next unclaimed index, so
  // uneven per-index cost balances automatically. Output determinism comes
  // from fn writing only to slot `i`.
  auto counter = std::make_shared<std::atomic<std::size_t>>(0);
  const std::size_t runners =
      std::min(n, static_cast<std::size_t>(pool->size()));
  std::vector<std::future<void>> done;
  done.reserve(runners);
  for (std::size_t r = 0; r < runners; ++r) {
    done.push_back(pool->submit([counter, n, pool, &fn] {
      const int worker = pool->currentWorker();
      for (;;) {
        std::size_t i = counter->fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        fn(i, worker < 0 ? 0 : worker);
      }
    }));
  }
  std::exception_ptr first;
  for (auto& f : done) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

}  // namespace mphls
