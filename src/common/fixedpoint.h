// Fixed-point helpers.
//
// The paper's square-root example works on fractional values in <1/16, 1>
// (Newton's method with a first-degree minimax polynomial seed). BDL and the
// synthesized datapaths operate on integers, so the example designs encode
// such fractions as unsigned fixed point with a compile-time number of
// fraction bits. These helpers convert between doubles and raw encodings for
// building stimulus and checking results.
#pragma once

#include <cstdint>

namespace mphls {

/// Encode `x` as unsigned fixed point with `fracBits` fraction bits,
/// rounding to nearest. Requires x >= 0.
[[nodiscard]] std::uint64_t toFixed(double x, int fracBits);

/// Decode an unsigned fixed-point raw value.
[[nodiscard]] double fromFixed(std::uint64_t raw, int fracBits);

/// Fixed-point multiply with truncation: (a*b) >> fracBits, as hardware
/// with a full-width product and a constant shift would compute it.
[[nodiscard]] std::uint64_t fixedMul(std::uint64_t a, std::uint64_t b,
                                     int fracBits);

/// Fixed-point divide: (a << fracBits) / b. Requires b != 0.
[[nodiscard]] std::uint64_t fixedDiv(std::uint64_t a, std::uint64_t b,
                                     int fracBits);

}  // namespace mphls
