// Benchmark reporting: a wall-clock timer, a tiny ordered JSON document
// builder, and the BenchReporter that the `mphls bench` suite and the
// pipeline stage timers write through. The JSON files it produces
// (BENCH_dse.json, BENCH_sched.json) track the performance trajectory of
// the synthesis system across PRs; keys are emitted in insertion order so
// diffs between runs stay readable.
#pragma once

#include <chrono>
#include <cstddef>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace mphls {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  void reset() { start_ = std::chrono::steady_clock::now(); }
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// A JSON value: null, bool, number, string, array, or object with
/// insertion-ordered keys. Just enough for the bench reports — no parsing.
class JsonValue {
 public:
  JsonValue() = default;
  JsonValue(bool b) : kind_(Kind::Bool), bool_(b) {}
  JsonValue(int v) : kind_(Kind::Number), num_(v) {}
  JsonValue(long v) : kind_(Kind::Number), num_(static_cast<double>(v)) {}
  JsonValue(std::size_t v)
      : kind_(Kind::Number), num_(static_cast<double>(v)) {}
  JsonValue(double v) : kind_(Kind::Number), num_(v) {}
  JsonValue(const char* s) : kind_(Kind::String), str_(s) {}
  JsonValue(std::string s) : kind_(Kind::String), str_(std::move(s)) {}

  [[nodiscard]] static JsonValue object();
  [[nodiscard]] static JsonValue array();

  /// Object access; inserts a null member on first use. Converts a null
  /// value into an object.
  JsonValue& operator[](const std::string& key);

  /// Array append. Converts a null value into an array.
  JsonValue& push(JsonValue v);

  [[nodiscard]] bool isNull() const { return kind_ == Kind::Null; }

  /// Serialize with 2-space indentation and a trailing newline at the top
  /// level. Doubles are printed with enough digits to round-trip.
  [[nodiscard]] std::string dump() const;

 private:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  void dumpTo(std::string& out, int depth) const;

  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  std::vector<JsonValue> arr_;
  std::vector<std::pair<std::string, JsonValue>> obj_;
};

/// Collects metrics for one benchmark into a JSON document and writes it
/// to disk. Typical use:
///
///   BenchReporter rep("dse_resource_sweep");
///   rep.root()["jobs"] = 4;
///   rep.root()["wall_seconds"] = t.seconds();
///   rep.writeFile("BENCH_dse.json");
class BenchReporter {
 public:
  explicit BenchReporter(const std::string& benchmarkName);

  [[nodiscard]] JsonValue& root() { return root_; }

  /// Timing helper: runs `fn` `repeats` times and returns the best
  /// (minimum) wall time in seconds — the standard estimator on a noisy
  /// shared machine.
  static double timeBest(int repeats, const std::function<void()>& fn);

  [[nodiscard]] std::string json() const { return root_.dump(); }

  /// Write the document to `path`; returns false on I/O failure.
  bool writeFile(const std::string& path) const;

 private:
  JsonValue root_;
};

}  // namespace mphls
