#include "common/bitutil.h"

#include "common/diag.h"

namespace mphls {

int bitsForStates(std::uint64_t n) {
  if (n <= 1) return 1;
  int bits = 0;
  std::uint64_t cap = 1;
  while (cap < n) {
    if (bits >= kMaxWidth) return kMaxWidth;  // n > 2^63: cap would wrap
    cap <<= 1;
    ++bits;
  }
  return bits;
}

bool isPowerOfTwo(std::uint64_t v) { return v != 0 && (v & (v - 1)) == 0; }

int log2Floor(std::uint64_t v) {
  MPHLS_CHECK(v > 0, "log2Floor of zero");
  int r = 0;
  while (v >>= 1) ++r;
  return r;
}

std::uint64_t maskBits(int width) {
  MPHLS_CHECK(width >= 1 && width <= kMaxWidth, "bad width " << width);
  if (width == 64) return ~0ULL;
  return (1ULL << width) - 1;
}

std::uint64_t truncBits(std::uint64_t v, int width) {
  return v & maskBits(width);
}

std::int64_t signExtend(std::uint64_t v, int width) {
  MPHLS_CHECK(width >= 1 && width <= kMaxWidth, "bad width " << width);
  v = truncBits(v, width);
  if (width == 64) return static_cast<std::int64_t>(v);
  const std::uint64_t signBit = 1ULL << (width - 1);
  if (v & signBit) v |= ~maskBits(width);
  return static_cast<std::int64_t>(v);
}

std::string toBinary(std::uint64_t v, int width) {
  std::string s(static_cast<std::size_t>(width), '0');
  for (int i = 0; i < width; ++i)
    if (v & (1ULL << i)) s[static_cast<std::size_t>(width - 1 - i)] = '1';
  return s;
}

}  // namespace mphls
