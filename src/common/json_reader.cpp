#include "common/json_reader.h"

#include <cstdlib>

namespace mphls::json {

namespace {

/// Recursive-descent parser over the whole input. Depth is bounded so a
/// hostile request body of 100k '[' cannot blow the stack.
constexpr int kMaxDepth = 64;

}  // namespace

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::unique_ptr<Node> run(ParseError& error) {
    auto node = value(0);
    skipWs();
    if (node && pos_ != text_.size()) {
      fail("trailing characters after JSON value");
      node.reset();
    }
    if (!node) {
      error.message = error_.empty() ? "invalid JSON" : error_;
      error.offset = errorPos_;
    }
    return node;
  }

 private:
  [[nodiscard]] bool eof() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  void skipWs() {
    while (!eof()) {
      const char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  std::nullptr_t fail(const std::string& msg) {
    if (error_.empty()) {
      error_ = msg;
      errorPos_ = pos_;
    }
    return nullptr;
  }

  bool expect(char c, const char* what) {
    skipWs();
    if (eof() || peek() != c) {
      fail(std::string("expected ") + what);
      return false;
    }
    ++pos_;
    return true;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  std::unique_ptr<Node> value(int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skipWs();
    if (eof()) return fail("unexpected end of input");
    const char c = peek();
    switch (c) {
      case '{':
        return object(depth);
      case '[':
        return array(depth);
      case '"':
        return string();
      case 't':
        if (literal("true")) return make(Node::Kind::Bool, true);
        return fail("bad literal");
      case 'f':
        if (literal("false")) return make(Node::Kind::Bool, false);
        return fail("bad literal");
      case 'n':
        if (literal("null")) return std::make_unique<Node>();
        return fail("bad literal");
      default:
        return number();
    }
  }

  static std::unique_ptr<Node> make(Node::Kind k, bool b) {
    auto n = std::make_unique<Node>();
    n->kind_ = k;
    n->bool_ = b;
    return n;
  }

  std::unique_ptr<Node> object(int depth) {
    ++pos_;  // '{'
    auto n = std::make_unique<Node>();
    n->kind_ = Node::Kind::Object;
    skipWs();
    if (!eof() && peek() == '}') {
      ++pos_;
      return n;
    }
    for (;;) {
      skipWs();
      if (eof() || peek() != '"') return fail("expected object key");
      auto key = string();
      if (!key) return nullptr;
      if (!expect(':', "':'")) return nullptr;
      auto val = value(depth + 1);
      if (!val) return nullptr;
      n->members_.emplace_back(std::move(key->str_), std::move(val));
      skipWs();
      if (eof()) return fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return n;
      }
      return fail("expected ',' or '}'");
    }
  }

  std::unique_ptr<Node> array(int depth) {
    ++pos_;  // '['
    auto n = std::make_unique<Node>();
    n->kind_ = Node::Kind::Array;
    skipWs();
    if (!eof() && peek() == ']') {
      ++pos_;
      return n;
    }
    for (;;) {
      auto val = value(depth + 1);
      if (!val) return nullptr;
      n->items_.push_back(std::move(val));
      skipWs();
      if (eof()) return fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return n;
      }
      return fail("expected ',' or ']'");
    }
  }

  /// Append one code point as UTF-8.
  static void appendUtf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool hex4(unsigned& out) {
    if (pos_ + 4 > text_.size()) return false;
    out = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      out <<= 4;
      if (c >= '0' && c <= '9') out |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') out |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') out |= static_cast<unsigned>(c - 'A' + 10);
      else return false;
    }
    pos_ += 4;
    return true;
  }

  std::unique_ptr<Node> string() {
    ++pos_;  // '"'
    auto n = std::make_unique<Node>();
    n->kind_ = Node::Kind::String;
    std::string& out = n->str_;
    while (!eof()) {
      const char c = text_[pos_++];
      if (c == '"') return n;
      if (static_cast<unsigned char>(c) < 0x20)
        return fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (eof()) break;
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = 0;
          if (!hex4(cp)) return fail("bad \\u escape");
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // Surrogate pair: the low half must follow immediately.
            unsigned lo = 0;
            if (!literal("\\u") || !hex4(lo) || lo < 0xDC00 || lo > 0xDFFF)
              return fail("unpaired surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("unpaired surrogate");
          }
          appendUtf8(out, cp);
          break;
        }
        default:
          return fail("bad escape character");
      }
    }
    return fail("unterminated string");
  }

  std::unique_ptr<Node> number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    const std::size_t digits = pos_;
    while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
    if (pos_ == digits) return fail("invalid number");
    // No leading zeros ("01"), per the RFC.
    if (pos_ - digits > 1 && text_[digits] == '0')
      return fail("leading zero in number");
    if (!eof() && peek() == '.') {
      ++pos_;
      const std::size_t frac = pos_;
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
      if (pos_ == frac) return fail("missing fraction digits");
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos_;
      const std::size_t exp = pos_;
      while (!eof() && peek() >= '0' && peek() <= '9') ++pos_;
      if (pos_ == exp) return fail("missing exponent digits");
    }
    auto n = std::make_unique<Node>();
    n->kind_ = Node::Kind::Number;
    n->num_ = std::strtod(std::string(text_.substr(start, pos_ - start)).c_str(),
                          nullptr);
    return n;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string error_;
  std::size_t errorPos_ = 0;
};

std::unique_ptr<Node> parseOrError(std::string_view text, ParseError& error) {
  return Parser(text).run(error);
}

std::unique_ptr<Node> parse(std::string_view text) {
  ParseError err;
  return parseOrError(text, err);
}

bool valid(std::string_view text) { return parse(text) != nullptr; }

const Node* Node::get(std::string_view key) const {
  for (const auto& [k, v] : members_)
    if (k == key) return v.get();
  return nullptr;
}

std::string Node::getString(std::string_view key, std::string dflt) const {
  const Node* n = get(key);
  return n && n->isString() ? n->str_ : std::move(dflt);
}

double Node::getNumber(std::string_view key, double dflt) const {
  const Node* n = get(key);
  return n && n->isNumber() ? n->num_ : dflt;
}

bool Node::getBool(std::string_view key, bool dflt) const {
  const Node* n = get(key);
  return n && n->isBool() ? n->bool_ : dflt;
}

}  // namespace mphls::json
