// Minimal JSON reader: the parsing counterpart of the JsonValue builder in
// bench_report.h. The serve daemon decodes request bodies with it, the
// load generator reads the daemon's /metrics snapshot back, and the test
// battery uses it to assert that every daemon response is well-formed
// JSON. Zero-dependency (std only) by design, like everything under obs/
// and common/.
//
// Scope: full RFC 8259 value grammar (null, bool, number, string with
// \uXXXX escapes decoded to UTF-8, array, object), strict — trailing
// garbage, unbalanced brackets, bad escapes and bare words all fail.
// Numbers are held as double (the builder side emits doubles too), and
// object members preserve insertion order with first-key-wins lookup.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mphls::json {

class Node;

/// Parse one complete JSON document. Returns nullptr on any syntax error
/// (use parseOrError for the position and message).
[[nodiscard]] std::unique_ptr<Node> parse(std::string_view text);

/// Parse with diagnostics: on failure the returned node is null and
/// `error` describes what went wrong and at which byte offset.
struct ParseError {
  std::string message;
  std::size_t offset = 0;
};
[[nodiscard]] std::unique_ptr<Node> parseOrError(std::string_view text,
                                                 ParseError& error);

/// True iff `text` is one well-formed JSON document.
[[nodiscard]] bool valid(std::string_view text);

/// One parsed JSON value. Accessors are total: asking an object for a
/// missing key or a number for its string returns a default instead of
/// throwing, so response-shape checks read as straight-line code.
class Node {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool isNull() const { return kind_ == Kind::Null; }
  [[nodiscard]] bool isBool() const { return kind_ == Kind::Bool; }
  [[nodiscard]] bool isNumber() const { return kind_ == Kind::Number; }
  [[nodiscard]] bool isString() const { return kind_ == Kind::String; }
  [[nodiscard]] bool isArray() const { return kind_ == Kind::Array; }
  [[nodiscard]] bool isObject() const { return kind_ == Kind::Object; }

  [[nodiscard]] bool boolean(bool dflt = false) const {
    return isBool() ? bool_ : dflt;
  }
  [[nodiscard]] double number(double dflt = 0) const {
    return isNumber() ? num_ : dflt;
  }
  [[nodiscard]] const std::string& str() const { return str_; }

  /// Array elements (empty for non-arrays).
  [[nodiscard]] const std::vector<std::unique_ptr<Node>>& items() const {
    return items_;
  }
  [[nodiscard]] std::size_t size() const { return items_.size(); }
  [[nodiscard]] const Node* at(std::size_t i) const {
    return i < items_.size() ? items_[i].get() : nullptr;
  }

  /// Object members in document order (empty for non-objects).
  [[nodiscard]] const std::vector<std::pair<std::string, std::unique_ptr<Node>>>&
  members() const {
    return members_;
  }
  /// First member named `key`, or nullptr (also for non-objects).
  [[nodiscard]] const Node* get(std::string_view key) const;
  [[nodiscard]] bool has(std::string_view key) const {
    return get(key) != nullptr;
  }

  // Shape-checked conveniences: default when the member is missing or of
  // the wrong kind.
  [[nodiscard]] std::string getString(std::string_view key,
                                      std::string dflt = "") const;
  [[nodiscard]] double getNumber(std::string_view key, double dflt = 0) const;
  [[nodiscard]] bool getBool(std::string_view key, bool dflt = false) const;

 private:
  friend std::unique_ptr<Node> parseOrError(std::string_view, ParseError&);
  friend class Parser;

  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  std::vector<std::unique_ptr<Node>> items_;
  std::vector<std::pair<std::string, std::unique_ptr<Node>>> members_;
};

}  // namespace mphls::json
