// Half-open lifetime intervals over global control steps, used by the
// register allocators (REAL-style left edge and clique partitioning).
#pragma once

#include <algorithm>

namespace mphls {

/// A value's lifetime [birth, death): the value is produced at step `birth`
/// and last consumed at step `death - 1`. Two values can share a register
/// exactly when their intervals do not overlap.
struct LiveInterval {
  int birth = 0;
  int death = 0;  // exclusive

  [[nodiscard]] bool empty() const { return death <= birth; }
  [[nodiscard]] int length() const { return std::max(0, death - birth); }

  [[nodiscard]] bool overlaps(const LiveInterval& o) const {
    return birth < o.death && o.birth < death;
  }
  [[nodiscard]] bool contains(int step) const {
    return step >= birth && step < death;
  }

  friend bool operator==(const LiveInterval& a, const LiveInterval& b) {
    return a.birth == b.birth && a.death == b.death;
  }
};

}  // namespace mphls
