#include "sta/sta.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "estim/estimate.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace mphls::sta {

namespace {

/// A timing graph: nodes are datapath pins (launch points, mux outputs,
/// FU outputs, capture points), edges carry the library delay between
/// them. Keys are stable strings so repeated references to the same pin
/// (e.g. one FU output feeding three captures) dedupe onto one node;
/// `display` is the human name used in path reports.
struct Graph {
  struct Node {
    std::string display;
    double init = 0;  ///< arrival before any in-edge (launches, busy FUs)
    double arrival = 0;
    int indeg = 0;
    int pred = -1;       ///< best in-edge, for path backtracking
    double predIncr = 0;
    bool endpoint = false;
  };

  std::vector<Node> nodes;
  std::vector<std::vector<std::pair<int, double>>> out;
  std::map<std::string, int> index;

  int node(const std::string& key, const std::string& display) {
    auto it = index.find(key);
    if (it != index.end()) return it->second;
    const int id = (int)nodes.size();
    index.emplace(key, id);
    Node n;
    n.display = display;
    nodes.push_back(std::move(n));
    out.emplace_back();
    return id;
  }

  void edge(int from, int to, double delay) {
    out[(std::size_t)from].emplace_back(to, delay);
    nodes[(std::size_t)to].indeg += 1;
  }

  void raiseInit(int id, double v) {
    Node& n = nodes[(std::size_t)id];
    n.init = std::max(n.init, v);
  }

  void markEndpoint(int id) { nodes[(std::size_t)id].endpoint = true; }

  /// Kahn topological longest-path relaxation. Returns false when a
  /// combinational cycle keeps some nodes unprocessed (their arrivals
  /// stay at `init`).
  bool relax() {
    std::vector<int> ready;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
      nodes[i].arrival = nodes[i].init;
      if (nodes[i].indeg == 0) ready.push_back((int)i);
    }
    std::size_t processed = 0;
    std::vector<int> indeg(nodes.size());
    for (std::size_t i = 0; i < nodes.size(); ++i) indeg[i] = nodes[i].indeg;
    while (!ready.empty()) {
      const int u = ready.back();
      ready.pop_back();
      processed += 1;
      for (const auto& [v, d] : out[(std::size_t)u]) {
        const double cand = nodes[(std::size_t)u].arrival + d;
        if (cand > nodes[(std::size_t)v].arrival) {
          nodes[(std::size_t)v].arrival = cand;
          nodes[(std::size_t)v].pred = u;
          nodes[(std::size_t)v].predIncr = d;
        }
        if (--indeg[(std::size_t)v] == 0) ready.push_back(v);
      }
    }
    return processed == nodes.size();
  }
};

std::string fmt(const char* f, ...) {
  char buf[128];
  va_list ap;
  va_start(ap, f);
  std::vsnprintf(buf, sizeof buf, f, ap);
  va_end(ap);
  return buf;
}

std::string fuDisplay(const RtlDesign& d, int f) {
  std::string s = "fu" + std::to_string(f);
  if (f >= 0 && (std::size_t)f < d.binding.fus.size()) {
    const FuInstance& fu = d.binding.fus[(std::size_t)f];
    if (fu.comp.valid() && fu.comp.index() < d.lib.components().size())
      s += " (" + d.lib.component(fu.comp).name + " w" +
           std::to_string(fu.width) + ")";
  }
  return s;
}

std::string portDisplay(const RtlDesign& d, int p) {
  if (p >= 0 && (std::size_t)p < d.fn.ports().size())
    return "port " + d.fn.ports()[(std::size_t)p].name;
  return "port#" + std::to_string(p);
}

/// Location tag for a state: "<block>.s<step>".
std::string stateDesc(const RtlDesign& d, const CtrlState& st) {
  std::string b = st.block.valid() && st.block.index() < d.fn.numBlocks()
                      ? d.fn.block(st.block).name
                      : "b" + std::to_string(st.block.valid()
                                                 ? (int)st.block.get()
                                                 : -1);
  return b + ".s" + std::to_string(st.step);
}

/// Per-stage delay of multicycle unit `f` completing in `st` (its issue
/// action lives in an earlier step of the same block); full component
/// delay when no issue matches (corrupt input — stay conservative).
double completionStageDelay(const RtlDesign& d, const CtrlState& st, int f) {
  const FuInstance& fu = d.binding.fus[(std::size_t)f];
  const double full = d.lib.component(fu.comp).delay(fu.width);
  for (const CtrlState& is : d.ctrl.states) {
    if (is.block != st.block || is.step >= st.step) continue;
    for (const FuAction& fa : is.fuActions)
      if (fa.fu == f && fa.cycles > 1 && is.step + fa.cycles - 1 == st.step)
        return full / fa.cycles;
  }
  return full;
}

/// Builds the graph fragment for one state under state-aware rules.
struct StateGraphBuilder {
  const RtlDesign& d;
  const CtrlState& st;
  Graph& g;

  /// Node for functional unit `f`'s output in this state. Active units
  /// get their selected operand legs as in-edges (compute delay on the
  /// mux->fu edge, spread over the span for multicycle issues); units
  /// merely delivering a previously issued multicycle result arrive at
  /// their final internal stage's delay.
  int fuNode(int f) {
    const std::string key = "fu " + std::to_string(f);
    auto it = g.index.find(key);
    if (it != g.index.end()) return it->second;
    const int id = g.node(key, fuDisplay(d, f));
    if (f < 0 || (std::size_t)f >= d.binding.fus.size()) return id;
    const FuInstance& fu = d.binding.fus[(std::size_t)f];
    const FuAction* act = nullptr;
    for (const FuAction& fa : st.fuActions)
      if (fa.fu == f) act = &fa;
    if (act == nullptr) {
      g.raiseInit(id, completionStageDelay(d, st, f));
      return id;
    }
    const double compute = d.lib.component(fu.comp).delay(fu.width) /
                           std::max(act->cycles, 1);
    g.raiseInit(id, compute);  // covers an (ill-formed) input-less unit
    for (int p = 0; p < 3; ++p) {
      if (act->muxSel[p] < 0) continue;
      const MuxSpec& m = d.ic.fuInput[(std::size_t)f][(std::size_t)p];
      if (act->muxSel[p] >= m.legs()) continue;  // corrupt; checked elsewhere
      const int mux = g.node(fmt("mux fu %d.%d", f, p),
                             fmt("mux fu%d.in%d", f, p));
      g.edge(sourceNode(m.sources[(std::size_t)act->muxSel[p]]), mux,
             d.lib.muxDelay(m.legs()));
      g.edge(mux, id, compute);
    }
    return id;
  }

  /// Launch (or FU-output) node for a datapath source. Free wiring
  /// transforms cost nothing and are not separate nodes.
  int sourceNode(const Source& s) {
    switch (s.kind) {
      case Source::Kind::Reg:
        return g.node("launch r " + std::to_string(s.id),
                      "r" + std::to_string(s.id));
      case Source::Kind::Port:
        return g.node("launch p " + std::to_string(s.id), portDisplay(d, s.id));
      case Source::Kind::Const:
        return g.node(fmt("launch c %lld w%d", (long long)s.imm, s.rootWidth),
                      "#" + std::to_string((long long)s.imm));
      case Source::Kind::Fu:
        return fuNode(s.id);
    }
    return g.node("launch ?", "?");
  }

  void build() {
    const double setup = d.lib.registerSetupDelay();
    // Instantiate every active unit even if nothing captures it.
    for (const FuAction& fa : st.fuActions) {
      fuNode(fa.fu);
      if (fa.cycles > 1) {
        // A multicycle issue latches its first internal stage this cycle.
        const int cap = g.node("cap stage " + std::to_string(fa.fu),
                               "fu" + std::to_string(fa.fu) + " stage");
        g.edge(fuNode(fa.fu), cap, setup);
        g.markEndpoint(cap);
      }
    }
    for (const RegAction& ra : st.regActions) {
      if (ra.reg < 0 || (std::size_t)ra.reg >= d.ic.regInput.size()) continue;
      const MuxSpec& m = d.ic.regInput[(std::size_t)ra.reg];
      if (ra.muxSel < 0 || ra.muxSel >= m.legs()) continue;
      const int mux = g.node("mux r " + std::to_string(ra.reg),
                             "mux r" + std::to_string(ra.reg));
      g.edge(sourceNode(m.sources[(std::size_t)ra.muxSel]), mux,
             d.lib.muxDelay(m.legs()));
      const int cap = g.node("cap r " + std::to_string(ra.reg),
                             "r" + std::to_string(ra.reg));
      g.edge(mux, cap, setup);
      g.markEndpoint(cap);
    }
    for (const PortAction& pa : st.portActions) {
      if (pa.port < 0 || (std::size_t)pa.port >= d.ic.outPortInput.size())
        continue;
      const MuxSpec& m = d.ic.outPortInput[(std::size_t)pa.port];
      if (pa.muxSel < 0 || pa.muxSel >= m.legs()) continue;
      const int mux = g.node("mux p " + std::to_string(pa.port),
                             "mux " + portDisplay(d, pa.port));
      g.edge(sourceNode(m.sources[(std::size_t)pa.muxSel]), mux,
             d.lib.muxDelay(m.legs()));
      const int cap = g.node("cap p " + std::to_string(pa.port),
                             portDisplay(d, pa.port));
      g.edge(mux, cap, setup);
      g.markEndpoint(cap);
    }
    // FSM next-state logic: the state register loads every cycle; a
    // conditional transition extends the path through the condition.
    const int fsm = g.node("cap fsm", "fsm");
    g.raiseInit(fsm, setup);
    g.markEndpoint(fsm);
    if (st.conditional) g.edge(sourceNode(st.cond), fsm, setup);
  }
};

/// Builds the state-oblivious (structural) graph: every mux leg is
/// assumed combinable with every other, every FU is a flat full-delay
/// cone, every capture point and every condition in the whole controller
/// participates. This is what a mode-blind netlist STA would see.
struct StructuralGraphBuilder {
  const RtlDesign& d;
  Graph& g;

  int fuNode(int f) { return g.node("fu " + std::to_string(f), fuDisplay(d, f)); }

  int sourceNode(const Source& s) {
    switch (s.kind) {
      case Source::Kind::Reg:
        return g.node("launch r " + std::to_string(s.id),
                      "r" + std::to_string(s.id));
      case Source::Kind::Port:
        return g.node("launch p " + std::to_string(s.id), portDisplay(d, s.id));
      case Source::Kind::Const:
        return g.node(fmt("launch c %lld w%d", (long long)s.imm, s.rootWidth),
                      "#" + std::to_string((long long)s.imm));
      case Source::Kind::Fu:
        return fuNode(s.id);
    }
    return g.node("launch ?", "?");
  }

  void feedMux(const MuxSpec& m, int mux) {
    for (const Source& s : m.sources)
      g.edge(sourceNode(s), mux, d.lib.muxDelay(m.legs()));
  }

  void build() {
    const double setup = d.lib.registerSetupDelay();
    for (int f = 0; f < (int)d.binding.fus.size(); ++f) {
      const FuInstance& fu = d.binding.fus[(std::size_t)f];
      const double full = d.lib.component(fu.comp).delay(fu.width);
      const int id = fuNode(f);
      g.raiseInit(id, full);
      for (int p = 0; p < 3; ++p) {
        const MuxSpec& m = d.ic.fuInput[(std::size_t)f][(std::size_t)p];
        if (m.legs() == 0) continue;
        const int mux = g.node(fmt("mux fu %d.%d", f, p),
                               fmt("mux fu%d.in%d", f, p));
        feedMux(m, mux);
        g.edge(mux, id, full);
      }
    }
    for (int r = 0; r < (int)d.ic.regInput.size(); ++r) {
      const MuxSpec& m = d.ic.regInput[(std::size_t)r];
      if (m.legs() == 0) continue;
      const int mux = g.node("mux r " + std::to_string(r),
                             "mux r" + std::to_string(r));
      feedMux(m, mux);
      const int cap = g.node("cap r " + std::to_string(r),
                             "r" + std::to_string(r));
      g.edge(mux, cap, setup);
      g.markEndpoint(cap);
    }
    for (int p = 0; p < (int)d.ic.outPortInput.size(); ++p) {
      const MuxSpec& m = d.ic.outPortInput[(std::size_t)p];
      if (m.legs() == 0) continue;
      const int mux = g.node("mux p " + std::to_string(p),
                             "mux " + portDisplay(d, p));
      feedMux(m, mux);
      const int cap = g.node("cap p " + std::to_string(p), portDisplay(d, p));
      g.edge(mux, cap, setup);
      g.markEndpoint(cap);
    }
    const int fsm = g.node("cap fsm", "fsm");
    g.raiseInit(fsm, setup);
    g.markEndpoint(fsm);
    for (const CtrlState& st : d.ctrl.states)
      if (st.conditional) g.edge(sourceNode(st.cond), fsm, setup);
  }
};

std::vector<char> reachableStates(const Controller& ctrl) {
  std::vector<char> seen(ctrl.states.size(), 0);
  std::vector<std::size_t> work;
  auto visit = [&](StateId s) {
    if (s.valid() && s.index() < seen.size() && !seen[s.index()]) {
      seen[s.index()] = 1;
      work.push_back(s.index());
    }
  };
  visit(ctrl.initial);
  while (!work.empty()) {
    const CtrlState& st = ctrl.states[work.back()];
    work.pop_back();
    visit(st.next);
    visit(st.nextTaken);
    visit(st.nextNot);
  }
  return seen;
}

TimingPath extractPath(const Graph& g, int endpoint, const CtrlState& st,
                       const std::string& desc, double clock) {
  TimingPath p;
  p.state = (int)st.id.get();
  p.stateDesc = desc;
  std::vector<int> chain;
  for (int n = endpoint; n != -1; n = g.nodes[(std::size_t)n].pred)
    chain.push_back(n);
  std::reverse(chain.begin(), chain.end());
  for (std::size_t i = 0; i < chain.size(); ++i) {
    const Graph::Node& n = g.nodes[(std::size_t)chain[i]];
    PathPoint pt;
    pt.node = n.display;
    // First point: a launch arrives at its init (0 for registers/ports,
    // the final stage delay for a busy multicycle unit).
    pt.incr = i == 0 ? n.init : n.predIncr;
    pt.arrival = n.arrival;
    p.points.push_back(std::move(pt));
  }
  p.startpoint = p.points.front().node;
  p.endpoint = p.points.back().node;
  p.arrival = g.nodes[(std::size_t)endpoint].arrival;
  p.required = clock;
  p.slack = clock - p.arrival;
  return p;
}

}  // namespace

std::string TimingPath::describe() const {
  std::string s = fmt("slack %+.3f (state %d, %s): ", slack, state,
                      stateDesc.c_str());
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (i) s += " -> ";
    s += points[i].node;
  }
  s += fmt("  [arrival %.3f, required %.3f]", arrival, required);
  return s;
}

StaResult runSta(const RtlDesign& design, const StaOptions& options) {
  double seconds = 0;
  StaResult r;
  {
    obs::TraceSpan span("sta.run", "", &seconds);

    r.estimatedCycleTime = estimateTiming(design).cycleTime;
    r.clockWasEstimated = options.clockNs <= 0;
    r.clockNs = r.clockWasEstimated ? r.estimatedCycleTime : options.clockNs;
    r.totalStates = design.ctrl.states.size();

    const std::vector<char> reach = reachableStates(design.ctrl);
    for (char c : reach) r.reachableStates += (c != 0);

    // Worst state-aware arrival per endpoint key, for false-path counting
    // against the structural graph.
    std::map<std::string, double> awareWorst;
    std::vector<TimingPath> allPaths;

    {
      obs::TraceSpan gs("sta.graph");
      for (const CtrlState& st : design.ctrl.states) {
        if (!reach[st.id.index()]) continue;
        Graph g;
        StateGraphBuilder{design, st, g}.build();
        if (!g.relax()) r.combLoop = true;
        const std::string desc = stateDesc(design, st);
        double stateWorst = 0;
        for (const auto& [key, id] : g.index) {
          const Graph::Node& n = g.nodes[(std::size_t)id];
          if (!n.endpoint) continue;
          r.endpointCount += 1;
          stateWorst = std::max(stateWorst, n.arrival);
          auto [it, inserted] = awareWorst.emplace(key, n.arrival);
          if (!inserted) it->second = std::max(it->second, n.arrival);
          if (n.arrival > r.cycleTime) {
            r.cycleTime = n.arrival;
            r.criticalState = (int)st.id.get();
          }
          allPaths.push_back(extractPath(g, id, st, desc, r.clockNs));
        }
        r.stateArrivals.emplace_back((int)st.id.index(), stateWorst);
      }
    }
    r.worstSlack = r.clockNs - r.cycleTime;

    {
      obs::TraceSpan ss("sta.structural");
      Graph g;
      StructuralGraphBuilder{design, g}.build();
      if (!g.relax()) r.combLoop = true;
      for (const auto& [key, id] : g.index) {
        const Graph::Node& n = g.nodes[(std::size_t)id];
        if (!n.endpoint) continue;
        r.structuralCycleTime = std::max(r.structuralCycleTime, n.arrival);
        const auto it = awareWorst.find(key);
        const double aware = it == awareWorst.end() ? -1.0 : it->second;
        if (n.arrival > aware + 1e-9) r.falsePathEndpoints += 1;
      }
    }

    std::stable_sort(allPaths.begin(), allPaths.end(),
                     [](const TimingPath& a, const TimingPath& b) {
                       if (a.slack != b.slack) return a.slack < b.slack;
                       if (a.state != b.state) return a.state < b.state;
                       return a.endpoint < b.endpoint;
                     });
    if (options.maxPaths >= 0 && allPaths.size() > (std::size_t)options.maxPaths)
      allPaths.resize((std::size_t)options.maxPaths);
    r.paths = std::move(allPaths);
  }

  auto& metrics = obs::MetricsRegistry::global();
  metrics.counter("sta.runs").add(1);
  metrics.histogram("sta.seconds").observe(seconds);
  metrics.histogram("sta.endpoints").observe((double)r.endpointCount);
  metrics.gauge("sta.cycle_time").set(r.cycleTime);
  metrics.gauge("sta.worst_slack").set(r.worstSlack);
  return r;
}

JsonValue staReportJson(const std::string& key, const std::string& name,
                        const StaResult& r) {
  JsonValue j = JsonValue::object();
  j[key] = name;
  j["clock_ns"] = r.clockNs;
  j["clock_estimated"] = r.clockWasEstimated;
  j["estimated_cycle_time"] = r.estimatedCycleTime;
  j["cycle_time"] = r.cycleTime;
  j["worst_slack"] = r.worstSlack;
  j["critical_state"] = r.criticalState;
  j["states"] = r.totalStates;
  j["reachable_states"] = r.reachableStates;
  j["endpoints"] = r.endpointCount;
  j["structural_cycle_time"] = r.structuralCycleTime;
  j["false_path_endpoints"] = r.falsePathEndpoints;
  j["comb_loop"] = r.combLoop;
  JsonValue paths = JsonValue::array();
  for (const TimingPath& p : r.paths) {
    JsonValue pj = JsonValue::object();
    pj["state"] = p.state;
    pj["state_desc"] = p.stateDesc;
    pj["startpoint"] = p.startpoint;
    pj["endpoint"] = p.endpoint;
    pj["arrival"] = p.arrival;
    pj["required"] = p.required;
    pj["slack"] = p.slack;
    JsonValue pts = JsonValue::array();
    for (const PathPoint& pt : p.points) {
      JsonValue tj = JsonValue::object();
      tj["node"] = pt.node;
      tj["incr"] = pt.incr;
      tj["arrival"] = pt.arrival;
      pts.push(std::move(tj));
    }
    pj["points"] = std::move(pts);
    paths.push(std::move(pj));
  }
  j["paths"] = std::move(paths);
  return j;
}

}  // namespace mphls::sta
