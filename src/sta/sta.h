// Path-level static timing analysis over the synthesized RTL design.
//
// The tutorial's tradeoff loop (Section 4, "integrating levels of design")
// needs timing feedback that names *paths*, not just a single worst
// number: which register launches, which multiplexers and functional
// units the data crosses, and where it is captured. This engine builds an
// explicit timing graph over the datapath — register/port outputs, mux
// outputs, functional-unit outputs, register/port/FSM inputs — with edge
// delays drawn from the HwLibrary component models, propagates arrival
// times by topological longest path, and computes required times and
// slack against a target clock.
//
// The analysis is *state-aware*: one activated graph is built per
// controller state reachable from the initial state, containing only the
// edges that state's asserted mux selects and register/port enables can
// actually sensitize. A classic state-oblivious (structural) analysis —
// every mux leg considered combinable with every other — is run
// alongside; endpoints whose structural arrival exceeds their worst
// state-aware arrival are *false paths* the mode information pruned
// (e.g. a shared ALU whose slow wide-mux operand port and slow capture
// mux are selected in different states, or a multicycle unit whose
// output is structurally a full-latency cone but per-state only one
// internal stage deep).
//
// The state-aware worst arrival is an independent re-derivation of
// estimateTiming's cycle time (src/estim/): the estimator recurses over
// controller actions, this engine relaxes an explicit graph. The two are
// cross-validated on every checked synthesis (check_timing.h) — the same
// differential-oracle trick the bytecode VM plays against the
// interpreters.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/bench_report.h"
#include "rtl/design.h"

namespace mphls::sta {

struct StaOptions {
  /// Target clock period in normalized ns; 0 selects the design's
  /// estimated cycle time (estimateTiming), making worst slack ~0 on a
  /// consistent design.
  double clockNs = 0;
  /// Number of worst (smallest-slack) paths to enumerate.
  int maxPaths = 5;
};

/// One node on a reported path, with the edge delay into it.
struct PathPoint {
  std::string node;
  double incr = 0;     ///< edge delay from the previous point
  double arrival = 0;  ///< cumulative arrival at this node
};

/// One register-to-register (or port/FSM) path in one controller state.
struct TimingPath {
  int state = -1;         ///< controller state id (-1: structural)
  std::string stateDesc;  ///< "block.step" location of the state
  std::string startpoint;
  std::string endpoint;
  double arrival = 0;
  double required = 0;  ///< the target clock at the capture point
  double slack = 0;     ///< required - arrival
  std::vector<PathPoint> points;  ///< launch ... capture

  /// "slack -0.30 (state 7, loop.s3): r2 -> mux fu0.in0 -> fu0 ... " line.
  [[nodiscard]] std::string describe() const;
};

struct StaResult {
  double clockNs = 0;             ///< resolved target clock
  bool clockWasEstimated = false; ///< true when options.clockNs was 0
  double estimatedCycleTime = 0;  ///< estimateTiming's independent answer

  double cycleTime = 0;    ///< state-aware worst arrival (STA cycle time)
  double worstSlack = 0;   ///< clockNs - cycleTime
  int criticalState = -1;  ///< state achieving cycleTime
  std::size_t endpointCount = 0;  ///< (state, capture) pairs analyzed
  std::size_t totalStates = 0;
  std::size_t reachableStates = 0;

  /// State-oblivious structural worst arrival (>= cycleTime); the gap is
  /// the pessimism the state-aware analysis removed.
  double structuralCycleTime = 0;
  /// Capture endpoints whose structural arrival exceeds their worst
  /// state-aware arrival: paths a mode-blind analysis would report that
  /// no reachable state can sensitize end to end.
  std::size_t falsePathEndpoints = 0;
  /// The structural graph contained a combinational cycle (only possible
  /// on corrupt/hand-built netlists; its affected arrivals are partial).
  bool combLoop = false;

  /// The K worst paths across all reachable states, slack ascending.
  std::vector<TimingPath> paths;

  /// Worst arrival per reachable state: (index into ctrl.states, arrival),
  /// in state order. Drives the chain-overrun lint and the tests.
  std::vector<std::pair<int, double>> stateArrivals;
};

[[nodiscard]] StaResult runSta(const RtlDesign& design,
                               const StaOptions& options = {});

/// Machine-readable report ({"<key>": name, "clock_ns": ..., "paths":
/// [...], ...}) in the deterministic sorted convention the lint/prove
/// JSON reports use. Shared by `mphls sta --format json`, the bench
/// suite and the golden tests.
[[nodiscard]] JsonValue staReportJson(const std::string& key,
                                      const std::string& name,
                                      const StaResult& r);

}  // namespace mphls::sta
