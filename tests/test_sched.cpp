// Tests for the scheduling subsystem: serial/ASAP/ALAP baselines, the
// resource-constrained iterative/constructive schedulers, force-directed
// and freedom-based scheduling, branch-and-bound, and the transformational
// family. Includes the paper's worked examples:
//   - Fig. 2: sqrt entry 3 steps / body 5 steps with one universal FU
//     (23 total over 4 iterations) and entry 2 / body 2 with two (10 total);
//   - Fig. 3 vs Fig. 4: ASAP pathology fixed by list scheduling;
//   - Fig. 5: the distribution graph values 1, 1+1/2, 1/2.
#include <gtest/gtest.h>

#include "ir/interp.h"
#include "lang/frontend.h"
#include "sched/asap.h"
#include "sched/bnb.h"
#include "sched/force_directed.h"
#include "sched/freedom.h"
#include "sched/list_sched.h"
#include "sched/sched_util.h"
#include "sched/transform_sched.h"

namespace mphls {
namespace {

// --------------------------------------------------------------- fixtures

/// The paper's optimized sqrt (Fig. 2): I is a narrow counter, the *0.5 is
/// a right shift, I+1 an increment, exit test I == 0 on wraparound.
const char* kSqrtFig2 = R"(
  proc sqrt(in x: uint<16>, out y: uint<16>) {
    var i: uint<2>;
    y = trunc<16>((zext<32>(x) * 3641) >> 12) + 910;
    i = 0;
    do {
      y = (y + trunc<16>((zext<32>(x) << 12) / zext<32>(y))) >> 1;
      i = i + 1;
    } until (i == 0);
  }
)";

/// Fig. 3/4 shape: a 3-op critical chain plus three independent ops,
/// two adders. ASAP in program order blocks the chain; list scheduling
/// (path-length priority) doesn't.
Function buildFig34() {
  Function fn("fig34");
  BlockId b = fn.addBlock("entry");
  PortId p[6];
  ValueId v[6];
  for (int i = 0; i < 6; ++i) {
    // Sequential append: GCC 12 -Wrestrict -O3 false positive (see vcd.cpp).
    std::string pname = "p";
    pname += std::to_string(i);
    p[i] = fn.addInput(pname, 8);
    v[i] = fn.emitRead(b, p[i]);
  }
  PortId q0 = fn.addOutput("q0", 8);
  PortId q1 = fn.addOutput("q1", 8);
  PortId q2 = fn.addOutput("q2", 8);
  PortId q3 = fn.addOutput("q3", 8);
  // Independent ops first (program order), then the chain.
  ValueId y1 = fn.emitBinary(b, OpKind::Add, v[0], v[1]);
  ValueId y2 = fn.emitBinary(b, OpKind::Add, v[2], v[3]);
  ValueId y3 = fn.emitBinary(b, OpKind::Add, v[4], v[5]);
  ValueId x1 = fn.emitBinary(b, OpKind::Add, v[0], v[5]);
  ValueId x2 = fn.emitBinary(b, OpKind::Add, x1, v[1]);
  ValueId x3 = fn.emitBinary(b, OpKind::Add, x2, v[2]);
  fn.emitWrite(b, q0, y1);
  fn.emitWrite(b, q1, y2);
  fn.emitWrite(b, q2, y3);
  fn.emitWrite(b, q3, x3);
  fn.setReturn(b);
  return fn;
}

/// Fig. 5 shape: a1 -> a2 -> m (a multiply pinning the chain) plus a3
/// dependent on a1; with a 3-step time constraint a1 is locked to step 0,
/// a2 to step 1, a3 ranges over steps {1, 2} — matching the paper's
/// addition distribution graph {1, 1+1/2, 1/2} (the paper numbers steps
/// from 1; we number from 0).
Function buildFig5() {
  Function fn("fig5");
  BlockId b = fn.addBlock("entry");
  PortId pa = fn.addInput("a", 8);
  PortId pb = fn.addInput("b", 8);
  PortId pc = fn.addInput("c", 8);
  PortId y = fn.addOutput("y", 8);
  PortId z = fn.addOutput("z", 8);
  ValueId va = fn.emitRead(b, pa);
  ValueId vb = fn.emitRead(b, pb);
  ValueId vc = fn.emitRead(b, pc);
  ValueId a1 = fn.emitBinary(b, OpKind::Add, va, vb);
  ValueId a2 = fn.emitBinary(b, OpKind::Add, a1, vc);
  ValueId a3 = fn.emitBinary(b, OpKind::Add, a1, va);
  ValueId m = fn.emitBinary(b, OpKind::Mul, a2, vc);
  fn.emitWrite(b, y, m);
  fn.emitWrite(b, z, a3);
  fn.setReturn(b);
  return fn;
}

BlockDeps depsOf(const Function& fn, BlockId b) {
  return BlockDeps(fn, fn.block(b));
}

// --------------------------------------------------- serial / unconstrained

TEST(SchedBase, SerialSqrtEntryIs3Steps) {
  Function fn = compileBdlOrThrow(kSqrtFig2);
  BlockDeps deps = depsOf(fn, fn.entry());
  BlockSchedule s = serialSchedule(deps);
  EXPECT_EQ(validateBlockSchedule(deps, s), "");
  // mul, add, and the I:=0 move — the paper's 3 entry control steps.
  // (The result shift chains; it is counted only inside the 16-bit trunc.)
  EXPECT_EQ(s.numSteps, 3);
}

TEST(SchedBase, SerialSqrtBodyIs5Steps) {
  Function fn = compileBdlOrThrow(kSqrtFig2);
  BlockId body = fn.findBlock("do_body_0");
  ASSERT_TRUE(body.valid()) << fn.dump();
  BlockDeps deps = depsOf(fn, body);
  BlockSchedule s = serialSchedule(deps);
  EXPECT_EQ(validateBlockSchedule(deps, s), "");
  // div, add, shift, increment, test: the paper's 5 steps per iteration.
  EXPECT_EQ(s.numSteps, 5);
}

TEST(SchedBase, Fig2TwentyThreeTotal) {
  Function fn = compileBdlOrThrow(kSqrtFig2);
  Schedule sched = scheduleFunction(
      fn, [](const BlockDeps& d) { return serialSchedule(d); });
  Interpreter in(fn);
  auto res = in.run({{"x", 2048}});
  ASSERT_TRUE(res.finished);
  // 3 + 4*5 = 23 control steps (paper Section 2).
  EXPECT_EQ(sched.stepsForTrace(res.blockTrace), 23);
}

TEST(SchedBase, AsapUnconstrainedMatchesCriticalPath) {
  Function fn = buildFig34();
  BlockDeps deps = depsOf(fn, fn.entry());
  BlockSchedule s = asapUnconstrained(deps);
  EXPECT_EQ(validateBlockSchedule(deps, s), "");
  EXPECT_EQ(s.numSteps, 3);  // x1 -> x2 -> x3
}

TEST(SchedBase, AlapPushesLate) {
  Function fn = buildFig34();
  BlockDeps deps = depsOf(fn, fn.entry());
  BlockSchedule s = alapUnconstrained(deps, 5);
  EXPECT_EQ(validateBlockSchedule(deps, s), "");
  EXPECT_EQ(s.numSteps, 5);
}

// ------------------------------------------------------------ ASAP vs list

TEST(SchedAsap, Fig3PathologyBlocksCriticalPath) {
  Function fn = buildFig34();
  BlockDeps deps = depsOf(fn, fn.entry());
  auto limits = ResourceLimits::withClasses({{FuClass::Adder, 2}});
  BlockSchedule s = asapResourceSchedule(deps, limits);
  EXPECT_EQ(validateBlockSchedule(deps, s, limits), "");
  // Program-order ASAP schedules y1,y2 first, pushing the chain to 4 steps.
  EXPECT_EQ(s.numSteps, 4);
}

TEST(SchedList, Fig4ListFindsOptimal) {
  Function fn = buildFig34();
  BlockDeps deps = depsOf(fn, fn.entry());
  auto limits = ResourceLimits::withClasses({{FuClass::Adder, 2}});
  BlockSchedule s = listSchedule(deps, limits, ListPriority::PathLength);
  EXPECT_EQ(validateBlockSchedule(deps, s, limits), "");
  EXPECT_EQ(s.numSteps, 3);  // optimal: chain never blocked
}

TEST(SchedList, ProgramOrderPriorityReproducesAsap) {
  Function fn = buildFig34();
  BlockDeps deps = depsOf(fn, fn.entry());
  auto limits = ResourceLimits::withClasses({{FuClass::Adder, 2}});
  BlockSchedule s = listSchedule(deps, limits, ListPriority::ProgramOrder);
  EXPECT_EQ(s.numSteps, 4);
}

TEST(SchedList, AllPrioritiesProduceValidSchedules) {
  Function fn = compileBdlOrThrow(kSqrtFig2);
  for (auto prio : {ListPriority::PathLength, ListPriority::Mobility,
                    ListPriority::Urgency, ListPriority::ProgramOrder}) {
    for (const auto& blk : fn.blocks()) {
      BlockDeps deps(fn, blk);
      auto limits = ResourceLimits::universalSet(2);
      BlockSchedule s = listSchedule(deps, limits, prio);
      EXPECT_EQ(validateBlockSchedule(deps, s, limits), "")
          << listPriorityName(prio) << " in " << blk.name;
    }
  }
}

TEST(SchedList, Fig2TenStepsWithTwoUniversalUnits) {
  Function fn = compileBdlOrThrow(kSqrtFig2);
  auto limits = ResourceLimits::universalSet(2);
  Schedule sched = scheduleFunction(fn, [&](const BlockDeps& d) {
    return listSchedule(d, limits, ListPriority::PathLength);
  });
  EXPECT_EQ(validateSchedule(fn, sched, limits), "");
  Interpreter in(fn);
  auto res = in.run({{"x", 2048}});
  // 2 + 4*2 = 10 control steps (paper Fig. 2: "the operations can now be
  // scheduled in 2+4*2=10 control steps").
  EXPECT_EQ(sched.stepsForTrace(res.blockTrace), 10);
}

TEST(SchedList, SingleUnitMatchesSerialLength) {
  // With one universal unit the list schedule should equal the serial
  // schedule's step count on straight-line code (minus free shifts, which
  // the serial mode charges; hence <=).
  Function fn = buildFig34();
  BlockDeps deps = depsOf(fn, fn.entry());
  auto limits = ResourceLimits::universalSet(1);
  BlockSchedule s = listSchedule(deps, limits, ListPriority::PathLength);
  EXPECT_EQ(validateBlockSchedule(deps, s, limits), "");
  EXPECT_EQ(s.numSteps, 6);  // 6 adds, one per step
}

// -------------------------------------------------------- force-directed

TEST(SchedFds, Fig5DistributionGraph) {
  Function fn = buildFig5();
  BlockDeps deps = depsOf(fn, fn.entry());
  auto dgs = distributionGraphs(deps, 3);
  ASSERT_TRUE(dgs.count(FuClass::Adder));
  const auto& dg = dgs.at(FuClass::Adder);
  // Paper Fig. 5 (steps renumbered from 0): 1.0, 1.5, 0.5.
  EXPECT_DOUBLE_EQ(dg.at(0), 1.0);
  EXPECT_DOUBLE_EQ(dg.at(1), 1.5);
  EXPECT_DOUBLE_EQ(dg.at(2), 0.5);
}

TEST(SchedFds, Fig5PlacesA3InLastStep) {
  Function fn = buildFig5();
  BlockDeps deps = depsOf(fn, fn.entry());
  BlockSchedule s = forceDirectedSchedule(deps, 3);
  EXPECT_EQ(validateBlockSchedule(deps, s), "");
  // Balanced distribution: one adder suffices (a1@0, a2@1, a3@2).
  auto peak = peakUsage(deps, s);
  EXPECT_EQ(peak.at(FuClass::Adder), 1);
}

TEST(SchedFds, BalancesUnderTightConstraint) {
  Function fn = buildFig34();
  BlockDeps deps = depsOf(fn, fn.entry());
  BlockSchedule s = forceDirectedSchedule(deps, 3);
  EXPECT_EQ(validateBlockSchedule(deps, s), "");
  EXPECT_LE(s.numSteps, 3);
  // 6 adds in 3 steps can balance to 2 adders.
  EXPECT_EQ(peakUsage(deps, s).at(FuClass::Adder), 2);
}

TEST(SchedFds, RespectsCriticalLengthWhenHorizonTooSmall) {
  Function fn = buildFig34();
  BlockDeps deps = depsOf(fn, fn.entry());
  BlockSchedule s = forceDirectedSchedule(deps, 1);  // infeasible request
  EXPECT_EQ(validateBlockSchedule(deps, s), "");
  EXPECT_EQ(s.numSteps, 3);  // clamped to the critical length
}

// -------------------------------------------------------- freedom (MAHA)

TEST(SchedFreedom, CriticalPathFirstThenLeastFreedom) {
  Function fn = buildFig34();
  BlockDeps deps = depsOf(fn, fn.entry());
  FreedomResult r = freedomSchedule(deps);
  EXPECT_EQ(validateBlockSchedule(deps, r.schedule), "");
  EXPECT_EQ(r.schedule.numSteps, 3);
  // Shares units: 6 adds in 3 steps never needs more than 2 + the chain.
  EXPECT_LE(r.allocated.at(FuClass::Adder), 3);
}

TEST(SchedFreedom, HonorsResourceCapByStretching) {
  Function fn = buildFig34();
  BlockDeps deps = depsOf(fn, fn.entry());
  auto cap = ResourceLimits::withClasses({{FuClass::Adder, 1}});
  FreedomResult r = freedomSchedule(deps, cap);
  EXPECT_EQ(validateBlockSchedule(deps, r.schedule, cap), "");
  EXPECT_EQ(r.schedule.numSteps, 6);
  EXPECT_EQ(r.allocated.at(FuClass::Adder), 1);
}

// ------------------------------------------------------- branch and bound

TEST(SchedBnb, FindsOptimumAndProvesIt) {
  Function fn = buildFig34();
  BlockDeps deps = depsOf(fn, fn.entry());
  auto limits = ResourceLimits::withClasses({{FuClass::Adder, 2}});
  BnbResult r = branchBoundSchedule(deps, limits);
  EXPECT_TRUE(r.optimal);
  EXPECT_EQ(validateBlockSchedule(deps, r.schedule, limits), "");
  EXPECT_EQ(r.schedule.numSteps, 3);
}

TEST(SchedBnb, MatchesListOnSqrtBlocks) {
  // The paper cites studies showing list scheduling "works nearly as well
  // as branch-and-bound"; on these small blocks they are exactly equal.
  Function fn = compileBdlOrThrow(kSqrtFig2);
  auto limits = ResourceLimits::universalSet(2);
  for (const auto& blk : fn.blocks()) {
    BlockDeps deps(fn, blk);
    BlockSchedule ls = listSchedule(deps, limits, ListPriority::PathLength);
    BnbResult br = branchBoundSchedule(deps, limits);
    EXPECT_TRUE(br.optimal);
    EXPECT_EQ(br.schedule.numSteps, ls.numSteps) << blk.name;
  }
}

TEST(SchedBnb, TightBudgetStillReturnsValidSchedule) {
  Function fn = buildFig34();
  BlockDeps deps = depsOf(fn, fn.entry());
  auto limits = ResourceLimits::withClasses({{FuClass::Adder, 1}});
  BnbResult r = branchBoundSchedule(deps, limits, /*nodeBudget=*/3);
  EXPECT_EQ(validateBlockSchedule(deps, r.schedule, limits), "");
}

// ------------------------------------------------------- transformational

TEST(SchedTransform, SerialStartPacksToOptimal) {
  Function fn = buildFig34();
  BlockDeps deps = depsOf(fn, fn.entry());
  auto limits = ResourceLimits::withClasses({{FuClass::Adder, 2}});
  TransformResult r = transformationalSchedule(
      deps, limits, TransformStart::MaximallySerial);
  EXPECT_EQ(validateBlockSchedule(deps, r.schedule, limits), "");
  EXPECT_EQ(r.schedule.numSteps, 3);
  EXPECT_GT(r.movesApplied, 0);
}

TEST(SchedTransform, ParallelStartSerializesToFit) {
  Function fn = buildFig34();
  BlockDeps deps = depsOf(fn, fn.entry());
  auto limits = ResourceLimits::withClasses({{FuClass::Adder, 1}});
  TransformResult r = transformationalSchedule(
      deps, limits, TransformStart::MaximallyParallel);
  EXPECT_EQ(validateBlockSchedule(deps, r.schedule, limits), "");
  EXPECT_EQ(r.schedule.numSteps, 6);
}

TEST(SchedTransform, BothStartsAgreeOnSqrt) {
  Function fn = compileBdlOrThrow(kSqrtFig2);
  auto limits = ResourceLimits::universalSet(2);
  for (const auto& blk : fn.blocks()) {
    BlockDeps deps(fn, blk);
    auto a = transformationalSchedule(deps, limits,
                                      TransformStart::MaximallySerial);
    auto b = transformationalSchedule(deps, limits,
                                      TransformStart::MaximallyParallel);
    EXPECT_EQ(validateBlockSchedule(deps, a.schedule, limits), "") << blk.name;
    EXPECT_EQ(validateBlockSchedule(deps, b.schedule, limits), "") << blk.name;
    EXPECT_EQ(a.schedule.numSteps, b.schedule.numSteps) << blk.name;
  }
}

// ------------------------------------------------------ validation guards

TEST(SchedValidate, RejectsBrokenDependence) {
  Function fn = buildFig34();
  BlockDeps deps = depsOf(fn, fn.entry());
  BlockSchedule s = asapUnconstrained(deps);
  // Violate: put everything in step 0.
  for (auto& st : s.step) st = 0;
  s.numSteps = 1;
  EXPECT_NE(validateBlockSchedule(deps, s), "");
}

TEST(SchedValidate, RejectsOverUse) {
  Function fn = buildFig34();
  BlockDeps deps = depsOf(fn, fn.entry());
  BlockSchedule s = asapUnconstrained(deps);  // 4 adds land in step 0
  auto limits = ResourceLimits::withClasses({{FuClass::Adder, 2}});
  EXPECT_NE(validateBlockSchedule(deps, s, limits), "");
}

TEST(SchedValidate, PeakUsageCountsClasses) {
  Function fn = buildFig34();
  BlockDeps deps = depsOf(fn, fn.entry());
  BlockSchedule s = asapUnconstrained(deps);
  auto peak = peakUsage(deps, s);
  EXPECT_EQ(peak.at(FuClass::Adder), 4);  // y1,y2,y3,x1 all at step 0
}

TEST(SchedValidate, RenderMentionsOps) {
  Function fn = buildFig34();
  BlockDeps deps = depsOf(fn, fn.entry());
  BlockSchedule s = asapUnconstrained(deps);
  std::string r = renderBlockSchedule(deps, s);
  EXPECT_NE(r.find("add"), std::string::npos);
  EXPECT_NE(r.find("step 0:"), std::string::npos);
}

}  // namespace
}  // namespace mphls
