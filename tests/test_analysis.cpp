// Tests for the abstract-interpretation dataflow engine (src/analysis/),
// the semantic lints built on it (src/check/check_semantics.*) and the
// analysis-driven width-narrowing pass (src/opt/narrow.cpp).
//
// The load-bearing property is *soundness*: every concrete value the
// behavioral interpreter produces must be contained in the fact the engine
// computed for it. It is checked three ways, in increasing generality:
//   - exhaustively, per transfer function, over all small-width constants;
//   - over random small intervals, enumerating every concrete pair;
//   - over >= 1000 whole random programs (raw CDFGs built through the
//     Function API plus random BDL programs), hooking the interpreter's
//     ValueObserver so every executed value is checked against its fact.
// Narrowing is additionally checked by behavior equivalence on the same
// random programs and by RTL-vs-behavior bit-identity on the built-ins.
#include <gtest/gtest.h>

#include <sstream>

#include "analysis/absval.h"
#include "analysis/dataflow.h"
#include "check/check.h"
#include "common/bitutil.h"
#include "core/designs.h"
#include "core/synthesizer.h"
#include "ir/interp.h"
#include "ir/verify.h"
#include "lang/frontend.h"
#include "opt/pass.h"

namespace mphls {
namespace {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : s_(seed * 2654435761u + 1) {}
  std::uint64_t next() {
    s_ ^= s_ << 13;
    s_ ^= s_ >> 7;
    s_ ^= s_ << 17;
    return s_;
  }
  std::size_t below(std::size_t n) { return (std::size_t)(next() % n); }
  bool chance(int percent) { return below(100) < (std::size_t)percent; }

 private:
  std::uint64_t s_;
};

// ------------------------------------------------------- AbsVal lattice

TEST(AbsVal, ConstantRoundTrip) {
  AbsVal c = AbsVal::constant(5, 8);
  EXPECT_TRUE(c.isConstant());
  EXPECT_EQ(c.constValue(), 5u);
  EXPECT_TRUE(c.contains(5));
  EXPECT_FALSE(c.contains(6));
  EXPECT_EQ(c.requiredUnsignedBits(), 3);
}

TEST(AbsVal, TopContainsEverything) {
  for (int w : {1, 7, 32, 64}) {
    AbsVal t = AbsVal::top(w);
    EXPECT_TRUE(t.isTop());
    EXPECT_TRUE(t.contains(0));
    EXPECT_TRUE(t.contains(maskBits(w)));
    EXPECT_EQ(t.requiredUnsignedBits(), w);
  }
}

TEST(AbsVal, JoinIsUpperBound) {
  AbsVal a = AbsVal::fromUnsignedRange(16, 3, 10);
  AbsVal b = AbsVal::fromUnsignedRange(16, 100, 200);
  AbsVal j = AbsVal::join(a, b);
  for (std::uint64_t v : {3u, 10u, 100u, 200u, 50u})
    EXPECT_TRUE(j.contains(v)) << v;
  EXPECT_FALSE(j.contains(201));
  EXPECT_FALSE(j.contains(2));
}

TEST(AbsVal, MeetIntersects) {
  AbsVal a = AbsVal::fromUnsignedRange(8, 0, 10);
  AbsVal b = AbsVal::fromUnsignedRange(8, 5, 20);
  AbsVal m = AbsVal::meet(a, b);
  EXPECT_EQ(m.ulo, 5u);
  EXPECT_EQ(m.uhi, 10u);
  AbsVal disjoint = AbsVal::meet(AbsVal::fromUnsignedRange(8, 0, 3),
                                 AbsVal::fromUnsignedRange(8, 9, 12));
  EXPECT_TRUE(disjoint.isBottom);
}

TEST(AbsVal, JoinWithBottomIsIdentity) {
  AbsVal a = AbsVal::fromUnsignedRange(8, 2, 9);
  EXPECT_EQ(AbsVal::join(a, AbsVal::bottom(8)), a);
  EXPECT_EQ(AbsVal::join(AbsVal::bottom(8), a), a);
}

TEST(AbsVal, NormalizeReducesBetweenViews) {
  // A known one-bit at position 7 must pull the unsigned lower bound up.
  AbsVal v = AbsVal::top(8);
  v.ones = 0x80;
  v.normalize();
  EXPECT_GE(v.ulo, 0x80u);
  EXPECT_FALSE(v.isBottom);
  // Contradictory facts collapse to bottom.
  AbsVal c = AbsVal::constant(3, 8);
  c.zeros |= 0x1;  // claims bit 0 is zero, but the value is 3
  c.normalize();
  EXPECT_TRUE(c.isBottom);
}

TEST(AbsVal, WideningStabilizesAscendingChains) {
  AbsVal state = AbsVal::constant(0, 32);
  int changes = 0;
  for (std::uint64_t i = 1; i < 5000; ++i) {
    AbsVal next = AbsVal::widen(state, AbsVal::join(state,
                                                    AbsVal::constant(i, 32)));
    if (!(next == state)) {
      ++changes;
      state = next;
    }
  }
  // Threshold widening: bounds jump along the power-of-two ladder, so the
  // chain settles in O(width) steps, not O(chain length).
  EXPECT_LE(changes, 40);
  EXPECT_TRUE(state.contains(4999));
}

TEST(AbsVal, EvalAbsOpBasics) {
  auto c = [](std::uint64_t v, int w) { return AbsVal::constant(v, w); };
  // Add wraps at the result width.
  EXPECT_EQ(evalAbsOp(OpKind::Add, 8, 0, {c(255, 8), c(1, 8)}).constValue(),
            0u);
  // And with a constant mask bounds the range.
  AbsVal masked = evalAbsOp(OpKind::And, 8, 0, {AbsVal::top(8), c(0x0F, 8)});
  EXPECT_LE(masked.uhi, 0x0Fu);
  // Disjoint ranges decide unsigned comparisons.
  AbsVal lt = evalAbsOp(OpKind::ULt, 1, 0,
                        {AbsVal::fromUnsignedRange(8, 0, 5),
                         AbsVal::fromUnsignedRange(8, 10, 20)});
  EXPECT_TRUE(lt.isConstant());
  EXPECT_EQ(lt.constValue(), 1u);
  // Division by a constant zero has the interpreter's defined semantics.
  EXPECT_EQ(evalAbsOp(OpKind::UDiv, 8, 0, {c(7, 8), c(0, 8)}).constValue(),
            maskBits(8));
}

// ------------------------------------------- per-op soundness, exhaustive

constexpr OpKind kBinaryKinds[] = {
    OpKind::Add, OpKind::Sub, OpKind::Mul, OpKind::Div, OpKind::UDiv,
    OpKind::Mod, OpKind::UMod, OpKind::And, OpKind::Or,  OpKind::Xor,
    OpKind::Shl, OpKind::Shr,  OpKind::Sar, OpKind::Eq,  OpKind::Ne,
    OpKind::Lt,  OpKind::Le,   OpKind::Gt,  OpKind::Ge,  OpKind::ULt,
    OpKind::ULe, OpKind::UGt,  OpKind::UGe};

constexpr OpKind kUnaryKinds[] = {OpKind::Not,   OpKind::Neg, OpKind::Inc,
                                  OpKind::Dec,   OpKind::Trunc,
                                  OpKind::ZExt,  OpKind::SExt};

TEST(AbsValSoundness, ExhaustiveConstantsAtSmallWidths) {
  const int widths[] = {1, 2, 3};
  for (int aw : widths) {
    for (int bw : widths) {
      for (int rw : widths) {
        for (OpKind k : kBinaryKinds) {
          const int w = opIsCompare(k) ? 1 : rw;
          for (std::uint64_t a = 0; a <= maskBits(aw); ++a) {
            for (std::uint64_t b = 0; b <= maskBits(bw); ++b) {
              const std::uint64_t got =
                  Interpreter::evalPure(k, w, 0, {a, b}, {aw, bw});
              const AbsVal abs = evalAbsOp(
                  k, w, 0,
                  {AbsVal::constant(a, aw), AbsVal::constant(b, bw)});
              ASSERT_TRUE(abs.contains(got))
                  << opName(k) << " w" << w << " (" << a << ":" << aw << ", "
                  << b << ":" << bw << ") -> " << got << " not in "
                  << abs.str();
            }
          }
        }
      }
    }
  }
}

TEST(AbsValSoundness, ExhaustiveUnaryAndConstShifts) {
  const int widths[] = {1, 2, 3, 5};
  for (int aw : widths) {
    for (int rw : widths) {
      for (std::uint64_t a = 0; a <= maskBits(aw); ++a) {
        for (OpKind k : kUnaryKinds) {
          const std::uint64_t got =
              Interpreter::evalPure(k, rw, 0, {a}, {aw});
          const AbsVal abs = evalAbsOp(k, rw, 0, {AbsVal::constant(a, aw)});
          ASSERT_TRUE(abs.contains(got))
              << opName(k) << " w" << rw << " (" << a << ":" << aw << ") -> "
              << got << " not in " << abs.str();
        }
        for (OpKind k : {OpKind::ShlConst, OpKind::ShrConst,
                         OpKind::SarConst}) {
          for (std::int64_t imm : {0, 1, 2, 4, 63}) {
            const std::uint64_t got =
                Interpreter::evalPure(k, rw, imm, {a}, {aw});
            const AbsVal abs =
                evalAbsOp(k, rw, imm, {AbsVal::constant(a, aw)});
            ASSERT_TRUE(abs.contains(got))
                << opName(k) << " imm " << imm << " w" << rw << " (" << a
                << ":" << aw << ") -> " << got << " not in " << abs.str();
          }
        }
      }
    }
  }
}

TEST(AbsValSoundness, RandomIntervalsEnumerated) {
  Rng rng(20260805);
  for (int c = 0; c < 400; ++c) {
    const int aw = 1 + (int)rng.below(6);
    const int bw = 1 + (int)rng.below(6);
    OpKind k = kBinaryKinds[rng.below(std::size(kBinaryKinds))];
    const int rw = opIsCompare(k) ? 1 : 1 + (int)rng.below(6);
    auto span = [&](int w) {
      std::uint64_t lo = rng.next() & maskBits(w);
      std::uint64_t hi = lo + rng.below(8);
      if (hi > maskBits(w)) hi = maskBits(w);
      return std::pair(lo, hi);
    };
    auto [alo, ahi] = span(aw);
    auto [blo, bhi] = span(bw);
    const AbsVal A = AbsVal::fromUnsignedRange(aw, alo, ahi);
    const AbsVal B = AbsVal::fromUnsignedRange(bw, blo, bhi);
    const AbsVal abs = evalAbsOp(k, rw, 0, {A, B});
    for (std::uint64_t a = alo; a <= ahi; ++a) {
      for (std::uint64_t b = blo; b <= bhi; ++b) {
        const std::uint64_t got =
            Interpreter::evalPure(k, rw, 0, {a, b}, {aw, bw});
        ASSERT_TRUE(abs.contains(got))
            << opName(k) << " w" << rw << " a=" << a << ":" << aw
            << " in [" << alo << "," << ahi << "] b=" << b << ":" << bw
            << " in [" << blo << "," << bhi << "] -> " << got << " not in "
            << abs.str();
      }
    }
  }
}

// --------------------------------------------------- engine on known IR

AnalysisResult analyzeSource(const char* src, Function* out = nullptr) {
  Function fn = compileBdlOrThrow(src);
  AnalysisResult res = analyzeFunction(fn);
  if (out) *out = std::move(fn);
  return res;
}

TEST(Dataflow, BranchRefinementBoundsVariableLoads) {
  Function fn("x");
  AnalysisResult res = analyzeSource(R"(
    proc p(in a: uint<8>, out o: uint<8>) {
      var x: uint<8>;
      x = a;
      if (x < 10) { o = x + 0; } else { o = 0; }
    }
  )", &fn);
  bool refined = false;
  for (const Block& blk : fn.blocks()) {
    for (OpId oid : blk.ops) {
      const Op& o = fn.op(oid);
      if (o.kind != OpKind::LoadVar) continue;
      const AbsVal& f = res.fact(o.result);
      if (!f.isBottom && f.uhi <= 9) refined = true;
    }
  }
  EXPECT_TRUE(refined) << "no load refined below the branch bound";
}

TEST(Dataflow, LoopExitRefinementProvesCounterValue) {
  Function fn("x");
  AnalysisResult res = analyzeSource(R"(
    proc p(in a: uint<16>, out o: uint<16>) {
      var i: uint<16>;
      i = 0;
      do { i = i + 1; } until (i == 200);
      o = i;
    }
  )", &fn);
  // The load feeding `o` sits on the loop's exit edge, where i == 200.
  bool proved = false;
  for (const Block& blk : fn.blocks()) {
    for (OpId oid : blk.ops) {
      const Op& o = fn.op(oid);
      if (o.kind != OpKind::LoadVar) continue;
      const AbsVal& f = res.fact(o.result);
      if (f.isConstant() && f.constValue() == 200) proved = true;
    }
  }
  EXPECT_TRUE(proved);
  EXPECT_GT(res.iterations, 0);
}

TEST(Dataflow, NestedLoopsConverge) {
  AnalysisResult res = analyzeSource(R"(
    proc p(in a: uint<8>, out o: uint<8>) {
      var i: uint<8>; var j: uint<8>; var acc: uint<8>;
      acc = a; i = 0;
      do {
        j = 0;
        do { acc = acc + j; j = j + 1; } until (j == 5);
        i = i + 1;
      } until (i == 7);
      o = acc;
    }
  )");
  EXPECT_LT(res.iterations, 500) << "widening failed to converge quickly";
}

TEST(Dataflow, FactAnnotationsSkipTopFacts) {
  Function fn("x");
  AnalysisResult res = analyzeSource(R"(
    proc p(in a: uint<8>, out o: uint<8>) { o = a + a; }
  )", &fn);
  auto notes = factAnnotations(fn, res);
  for (const auto& [v, text] : notes) {
    EXPECT_FALSE(res.fact(v).isTop()) << text;
    EXPECT_FALSE(text.empty());
  }
}

// ------------------------------------------------------- semantic lints

CheckReport lintSource(const char* src) {
  Function fn = compileBdlOrThrow(src);
  CheckReport report;
  checkSemantics(fn, report);
  return report;
}

TEST(SemanticLint, ReadBeforeWriteFiresAndStaysQuiet) {
  CheckReport bad = lintSource(R"(
    proc p(in a: uint<8>, out o: uint<8>) {
      var x: uint<8>;
      o = x;
      x = a;
    }
  )");
  EXPECT_TRUE(bad.has("analysis.read-before-write")) << bad.render();
  CheckReport good = lintSource(R"(
    proc p(in a: uint<8>, out o: uint<8>) {
      var x: uint<8>;
      x = a;
      o = x;
    }
  )");
  EXPECT_FALSE(good.has("analysis.read-before-write")) << good.render();
}

TEST(SemanticLint, DeadBranchAndUnreachableBlock) {
  // a + 1 wraps at 8 bits, so x <= 255 and the comparison is always false.
  CheckReport bad = lintSource(R"(
    proc p(in a: uint<8>, out o: uint<8>) {
      var x: uint<16>;
      x = a + 1;
      if (x > 300) { o = 1; } else { o = 2; }
    }
  )");
  EXPECT_TRUE(bad.has("analysis.dead-branch")) << bad.render();
  EXPECT_TRUE(bad.has("analysis.unreachable-block")) << bad.render();
  CheckReport good = lintSource(R"(
    proc p(in a: uint<16>, out o: uint<8>) {
      var x: uint<16>;
      x = a;
      if (x > 300) { o = 1; } else { o = 2; }
    }
  )");
  EXPECT_FALSE(good.has("analysis.dead-branch")) << good.render();
  EXPECT_FALSE(good.has("analysis.unreachable-block")) << good.render();
}

TEST(SemanticLint, StoreTruncates) {
  CheckReport bad = lintSource(R"(
    proc p(in a: uint<8>, out o: uint<4>) {
      o = 255;
    }
  )");
  EXPECT_TRUE(bad.has("analysis.store-truncates")) << bad.render();
  CheckReport good = lintSource(R"(
    proc p(in a: uint<8>, out o: uint<4>) {
      o = 12;
    }
  )");
  EXPECT_FALSE(good.has("analysis.store-truncates")) << good.render();
}

TEST(SemanticLint, DivByZeroAlwaysVersusMaybe) {
  CheckReport always = lintSource(R"(
    proc p(in a: uint<8>, out o: uint<8>) { o = a / 0; }
  )");
  ASSERT_TRUE(always.has("analysis.div-by-zero")) << always.render();
  bool sawAlways = false;
  for (const auto& d : always.all())
    if (d.id == "analysis.div-by-zero" &&
        d.message.find("always zero") != std::string::npos)
      sawAlways = true;
  EXPECT_TRUE(sawAlways) << always.render();

  CheckReport maybe = lintSource(R"(
    proc p(in a: uint<8>, in b: uint<8>, out o: uint<8>) { o = a / b; }
  )");
  EXPECT_TRUE(maybe.has("analysis.div-by-zero")) << maybe.render();

  // A guarded divisor is range-refined away from zero: no finding.
  CheckReport guarded = lintSource(R"(
    proc p(in a: uint<8>, in b: uint<8>, out o: uint<8>) {
      var d: uint<8>;
      d = b;
      if (d != 0) { o = a / d; } else { o = 0; }
    }
  )");
  EXPECT_FALSE(guarded.has("analysis.div-by-zero")) << guarded.render();
}

TEST(SemanticLint, LintsAreWarningsNotErrors) {
  CheckReport rep = lintSource(R"(
    proc p(in a: uint<8>, out o: uint<8>) {
      var x: uint<8>;
      o = x / 0;
    }
  )");
  EXPECT_GE(rep.warningCount(), 2u);
  EXPECT_EQ(rep.errorCount(), 0u);
  EXPECT_TRUE(rep.clean());
}

TEST(SemanticLint, BuiltinDesignsHaveNoErrorFindings) {
  for (const auto& d : designs::all()) {
    Function fn = compileBdlOrThrow(d.source);
    CheckReport report;
    checkSemantics(fn, report);
    EXPECT_EQ(report.errorCount(), 0u) << d.name << ":\n" << report.render();
  }
}

// ------------------------------------------------ random-DFG soundness

struct DfgProgram {
  Function fn{"dfg"};
  std::vector<std::string> inputNames;
};

DfgProgram makeRandomDfg(Rng& rng) {
  DfgProgram p;
  Function& fn = p.fn;
  BlockId b = fn.addBlock("entry");
  fn.setEntry(b);

  std::vector<ValueId> pool;
  const int nIn = 2 + (int)rng.below(2);
  for (int i = 0; i < nIn; ++i) {
    std::string name = "in" + std::to_string(i);
    PortId port = fn.addInput(name, 1 + (int)rng.below(64));
    p.inputNames.push_back(name);
    pool.push_back(fn.emitRead(b, port));
  }
  std::vector<VarId> vars;
  const int nVar = 1 + (int)rng.below(2);
  for (int i = 0; i < nVar; ++i)
    vars.push_back(fn.addVar("v" + std::to_string(i),
                             1 + (int)rng.below(64)));
  for (int i = 0; i < 3; ++i)
    pool.push_back(fn.emitConst(b, (std::int64_t)rng.next(),
                                1 + (int)rng.below(64)));

  auto pick = [&] { return pool[rng.below(pool.size())]; };
  constexpr OpKind shifts[] = {OpKind::ShlConst, OpKind::ShrConst,
                               OpKind::SarConst};
  constexpr OpKind compares[] = {OpKind::Eq,  OpKind::Ne,  OpKind::Lt,
                                 OpKind::Le,  OpKind::Gt,  OpKind::Ge,
                                 OpKind::ULt, OpKind::ULe, OpKind::UGt,
                                 OpKind::UGe};
  constexpr OpKind arith[] = {OpKind::Add, OpKind::Sub, OpKind::Mul,
                              OpKind::Div, OpKind::UDiv, OpKind::Mod,
                              OpKind::UMod, OpKind::And, OpKind::Or,
                              OpKind::Xor, OpKind::Shl, OpKind::Shr,
                              OpKind::Sar};

  const int nOps = 12 + (int)rng.below(20);
  for (int i = 0; i < nOps; ++i) {
    const int w = 1 + (int)rng.below(64);
    switch (rng.below(6)) {
      case 0:
        pool.push_back(fn.emitBinary(b, arith[rng.below(std::size(arith))],
                                     pick(), pick(), w));
        break;
      case 1:
        pool.push_back(fn.emitUnary(
            b, kUnaryKinds[rng.below(std::size(kUnaryKinds))], pick(), w));
        break;
      case 2:
        pool.push_back(fn.emitUnary(b, shifts[rng.below(std::size(shifts))],
                                    pick(), w,
                                    (std::int64_t)rng.below(64)));
        break;
      case 3:
        pool.push_back(fn.emitBinary(
            b, compares[rng.below(std::size(compares))], pick(), pick()));
        break;
      case 4:
        pool.push_back(fn.emitSelect(b, pick(), pick(), pick()));
        break;
      case 5: {
        VarId v = vars[rng.below(vars.size())];
        fn.emitStore(b, v, pick());
        pool.push_back(fn.emitLoad(b, v));
        break;
      }
    }
  }
  PortId out = fn.addOutput("o", 1 + (int)rng.below(64));
  fn.emitWrite(b, out, pick());
  fn.setReturn(b);
  return p;
}

std::map<std::string, std::uint64_t> fuzzInputs(
    const std::vector<std::string>& names, Rng& rng, int trial) {
  std::map<std::string, std::uint64_t> in;
  for (const auto& n : names) {
    std::uint64_t v = rng.next();
    if (trial == 0) v = 0;
    if (trial == 1) v = ~0ull;
    in[n] = v;
  }
  return in;
}

/// One soundness run: analyze, execute, assert every observed value is
/// inside its fact. Returns the number of containment violations.
int soundnessViolations(const Function& fn, const AnalysisResult& res,
                        const std::vector<std::string>& inputNames,
                        Rng& rng, int trials) {
  Interpreter interp(fn);
  int bad = 0;
  for (int trial = 0; trial < trials; ++trial) {
    auto in = fuzzInputs(inputNames, rng, trial);
    (void)interp.run(in, 100000, [&](ValueId v, std::uint64_t raw) {
      if (!res.fact(v).contains(raw)) {
        if (bad < 3)
          ADD_FAILURE() << "unsound fact: v" << v.get() << " = " << raw
                        << " not in " << res.fact(v).str() << "\n"
                        << fn.dump();
        ++bad;
      }
    });
  }
  return bad;
}

class AnalysisDfgFuzz : public ::testing::TestWithParam<int> {};

TEST_P(AnalysisDfgFuzz, FactsContainEveryObservedValue) {
  Rng rng((std::uint64_t)GetParam() * 7919 + 17);
  for (int prog = 0; prog < 25; ++prog) {
    DfgProgram p = makeRandomDfg(rng);
    verifyOrThrow(p.fn);
    AnalysisResult res = analyzeFunction(p.fn);
    ASSERT_EQ(soundnessViolations(p.fn, res, p.inputNames, rng, 3), 0)
        << "seed " << GetParam() << " program " << prog;
  }
}

TEST_P(AnalysisDfgFuzz, NarrowingPreservesBehavior) {
  Rng rng((std::uint64_t)GetParam() * 7919 + 17);
  for (int prog = 0; prog < 25; ++prog) {
    DfgProgram p = makeRandomDfg(rng);
    Function narrowed = p.fn.clone();
    PassManager pm;
    pm.add(createNarrowWidthsPass());
    pm.run(narrowed);  // re-verifies the IR after the pass
    Interpreter i0(p.fn), i1(narrowed);
    for (int trial = 0; trial < 3; ++trial) {
      auto in = fuzzInputs(p.inputNames, rng, trial);
      auto r0 = i0.run(in);
      auto r1 = i1.run(in);
      ASSERT_TRUE(r0.finished && r1.finished);
      ASSERT_EQ(r0.outputs, r1.outputs)
          << "seed " << GetParam() << " program " << prog << "\n"
          << p.fn.dump() << "\n--- narrowed ---\n" << narrowed.dump();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnalysisDfgFuzz, ::testing::Range(0, 24));

// ------------------------------------------------ random-BDL soundness

/// Compact random BDL generator: mixed widths, nested if/else, bounded
/// counted loops; every variable is initialized and every output assigned
/// up front, so all programs compile and terminate.
class BdlGen {
 public:
  explicit BdlGen(std::uint64_t seed) : rng_(seed) {}

  struct Result {
    std::string source;
    std::vector<std::string> inputs;
  };

  Result generate() {
    std::ostringstream out;
    Result res;
    const int nIn = 2 + (int)rng_.below(2);
    const int nVar = 2 + (int)rng_.below(3);
    out << "proc fuzz(";
    for (int i = 0; i < nIn; ++i) {
      std::string name = "in" + std::to_string(i);
      syms_.push_back(name);
      res.inputs.push_back(name);
      out << (i ? ", " : "") << "in " << name << ": uint<" << randWidth()
          << ">";
    }
    out << ", out out0: uint<" << randWidth() << ">) {\n";
    for (int i = 0; i < nVar; ++i) {
      std::string name = "v" + std::to_string(i);
      out << "  var " << name << ": uint<" << randWidth() << ">;\n";
      out << "  " << name << " = " << expr(1) << ";\n";
      syms_.push_back(name);
    }
    writables_.insert(writables_.end(), syms_.begin() + nIn, syms_.end());
    writables_.push_back("out0");
    out << "  out0 = " << expr(1) << ";\n";
    const int nStmt = 3 + (int)rng_.below(5);
    for (int i = 0; i < nStmt; ++i) stmt(out, 0);
    out << "}\n";
    res.source = out.str();
    return res;
  }

 private:
  Rng rng_;
  std::vector<std::string> syms_;       // readable
  std::vector<std::string> writables_;  // vars + outputs
  int loops_ = 0;

  int randWidth() {
    const int widths[] = {4, 8, 12, 16, 24, 32};
    return widths[rng_.below(6)];
  }

  std::string expr(int depth) {
    if (depth >= 3 || rng_.chance(35)) {
      if (rng_.chance(30)) return std::to_string(rng_.below(1000));
      return syms_[rng_.below(syms_.size())];
    }
    const char* ops[] = {" + ", " - ", " * ", " / ", " % ", " & ", " ^ "};
    switch (rng_.below(10)) {
      case 0:
        return "(" + expr(depth + 1) + " >> " +
               std::to_string(1 + rng_.below(3)) + ")";
      case 1:
        return "(" + expr(depth + 1) + (rng_.chance(50) ? " < " : " >= ") +
               expr(depth + 1) + " ? " + expr(depth + 1) + " : " +
               expr(depth + 1) + ")";
      case 2:
        return "zext<32>(" + expr(depth + 1) + ")";
      default:
        return "(" + expr(depth + 1) + ops[rng_.below(7)] + expr(depth + 1) +
               ")";
    }
  }

  void stmt(std::ostringstream& out, int depth) {
    const int roll = (int)rng_.below(100);
    const std::string pad((std::size_t)(2 * depth + 2), ' ');
    if (roll < 55 || depth >= 2) {
      out << pad << writables_[rng_.below(writables_.size())] << " = "
          << expr(0) << ";\n";
    } else if (roll < 80) {
      out << pad << "if (" << expr(1)
          << (rng_.chance(50) ? " != " : " > ") << expr(1) << ") {\n";
      stmt(out, depth + 1);
      if (rng_.chance(60)) {
        out << pad << "} else {\n";
        stmt(out, depth + 1);
      }
      out << pad << "}\n";
    } else {
      std::string c = "k" + std::to_string(loops_++);
      out << pad << "var " << c << ": uint<4>;\n";
      out << pad << c << " = 0;\n";
      out << pad << "do {\n";
      stmt(out, depth + 1);
      out << pad << "  " << c << " = " << c << " + 1;\n";
      out << pad << "} until (" << c << " == " << 2 + rng_.below(4) << ");\n";
    }
  }
};

class AnalysisBdlFuzz : public ::testing::TestWithParam<int> {};

TEST_P(AnalysisBdlFuzz, FactsContainEveryObservedValue) {
  Rng rng((std::uint64_t)GetParam() * 104729 + 5);
  for (int prog = 0; prog < 25; ++prog) {
    auto gen = BdlGen((std::uint64_t)GetParam() * 1000 + prog).generate();
    Function fn = compileBdlOrThrow(gen.source);
    AnalysisResult res = analyzeFunction(fn);
    ASSERT_EQ(soundnessViolations(fn, res, gen.inputs, rng, 3), 0)
        << "seed " << GetParam() << " program " << prog << "\n"
        << gen.source;
  }
}

TEST_P(AnalysisBdlFuzz, NarrowingAfterOptimizationPreservesBehavior) {
  Rng rng((std::uint64_t)GetParam() * 104729 + 5);
  for (int prog = 0; prog < 25; ++prog) {
    auto gen = BdlGen((std::uint64_t)GetParam() * 1000 + prog).generate();
    Function fn = compileBdlOrThrow(gen.source);
    Function opt = fn.clone();
    optimize(opt);
    Function narrowed = opt.clone();
    PassManager pm;
    pm.add(createNarrowWidthsPass());
    pm.run(narrowed);
    Interpreter i0(fn), i1(narrowed);
    for (int trial = 0; trial < 3; ++trial) {
      auto in = fuzzInputs(gen.inputs, rng, trial);
      auto r0 = i0.run(in);
      auto r1 = i1.run(in);
      ASSERT_TRUE(r0.finished && r1.finished) << gen.source;
      ASSERT_EQ(r0.outputs, r1.outputs)
          << "seed " << GetParam() << " program " << prog << "\n"
          << gen.source;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnalysisBdlFuzz, ::testing::Range(0, 18));

// --------------------------------------------- narrowing on the builtins

TEST(Narrow, ShrinksBuiltinsAndKeepsRtlBitIdentical) {
  SynthesisOptions base;
  base.resources = ResourceLimits::universalSet(2);
  SynthesisOptions narrowed = base;
  narrowed.narrow = true;

  int strictlySmaller = 0;
  Rng rng(99);
  for (const auto& d : designs::all()) {
    SynthesisResult r0 = Synthesizer(base).synthesizeSource(d.source);
    SynthesisResult r1 = Synthesizer(narrowed).synthesizeSource(d.source);
    EXPECT_LE(r1.area.total(), r0.area.total()) << d.name;
    if (r1.area.total() < r0.area.total()) ++strictlySmaller;

    // Bit-identity of the narrowed RTL against the behavioral spec, on the
    // designs' sample stimulus plus random stimulus.
    EXPECT_EQ(verifyAgainstBehavior(r1, d.sampleInputs), "") << d.name;
    for (int t = 0; t < 2; ++t) {
      std::map<std::string, std::uint64_t> in;
      for (const auto& [k, v] : d.sampleInputs) in[k] = rng.next();
      EXPECT_EQ(verifyAgainstBehavior(r1, in), "") << d.name;
    }

    CheckOptions copts;
    copts.resources = base.resources;
    CheckReport rep = checkDesign(r1.design, copts);
    EXPECT_TRUE(rep.clean()) << d.name << ":\n" << rep.render();
  }
  // The acceptance bar: estimated area strictly shrinks on at least two
  // built-in designs (empirically sqrt, diffeq, ewf and fir8 all shrink).
  EXPECT_GE(strictlySmaller, 2);
}

TEST(Narrow, NeverWidensAndRespectsPortWidths) {
  for (const auto& d : designs::all()) {
    Function fn = compileBdlOrThrow(d.source);
    optimize(fn);
    Function narrowed = fn.clone();
    PassManager pm;
    pm.add(createNarrowWidthsPass());
    pm.run(narrowed);
    ASSERT_EQ(fn.numValues(), narrowed.numValues());
    for (const Value& v : fn.values()) {
      const Value& nv = narrowed.value(v.id);
      EXPECT_LE(nv.width, v.width) << d.name;
      EXPECT_GE(nv.width, 1) << d.name;
      if (fn.defOf(v.id).kind == OpKind::ReadPort) {
        EXPECT_EQ(nv.width, v.width) << d.name << ": port read narrowed";
      }
    }
  }
}

// --------------------------------- regression: defined edge-case arithmetic

TEST(EvalPureRegression, SignedDivisionOverflowIsDefined) {
  const std::uint64_t intMin = 1ull << 63;
  const std::vector<int> w64{64, 64};
  // INT64_MIN / -1 wraps to INT64_MIN (two's-complement negation).
  EXPECT_EQ(Interpreter::evalPure(OpKind::Div, 64, 0, {intMin, ~0ull}, w64),
            intMin);
  EXPECT_EQ(Interpreter::evalPure(OpKind::Mod, 64, 0, {intMin, ~0ull}, w64),
            0u);
  // Same at narrow width: -128 / -1 == -128 at 8 bits.
  EXPECT_EQ(Interpreter::evalPure(OpKind::Div, 8, 0, {0x80, 0xFF}, {8, 8}),
            0x80u);
  EXPECT_EQ(Interpreter::evalPure(OpKind::Mod, 8, 0, {0x80, 0xFF}, {8, 8}),
            0u);
}

TEST(EvalPureRegression, DivisionByZeroIsDefined) {
  EXPECT_EQ(Interpreter::evalPure(OpKind::Div, 8, 0, {5, 0}, {8, 8}),
            maskBits(8));
  EXPECT_EQ(Interpreter::evalPure(OpKind::UDiv, 16, 0, {5, 0}, {16, 16}),
            maskBits(16));
  EXPECT_EQ(Interpreter::evalPure(OpKind::Mod, 8, 0, {5, 0}, {8, 8}), 0u);
  EXPECT_EQ(Interpreter::evalPure(OpKind::UMod, 8, 0, {5, 0}, {8, 8}), 0u);
}

TEST(EvalPureRegression, OversizeShiftAmountsAreDefined) {
  // Constant shifts: amounts >= 64 shift everything out (or clamp for the
  // arithmetic shift, which saturates to the sign).
  EXPECT_EQ(Interpreter::evalPure(OpKind::ShlConst, 32, 64, {5}, {32}), 0u);
  EXPECT_EQ(Interpreter::evalPure(OpKind::ShrConst, 32, 100, {5}, {32}), 0u);
  EXPECT_EQ(Interpreter::evalPure(OpKind::SarConst, 8, 1000, {0x80}, {8}),
            0xFFu);
  EXPECT_EQ(Interpreter::evalPure(OpKind::SarConst, 8, 1000, {0x7F}, {8}),
            0u);
  // Variable shifts with amounts >= 64.
  EXPECT_EQ(Interpreter::evalPure(OpKind::Shl, 32, 0, {5, 64}, {32, 32}),
            0u);
  EXPECT_EQ(Interpreter::evalPure(OpKind::Shr, 32, 0, {5, 64}, {32, 32}),
            0u);
  EXPECT_EQ(Interpreter::evalPure(OpKind::Sar, 8, 0, {0x80, 200}, {8, 8}),
            0xFFu);
}

TEST(BitUtilRegression, BitsForStatesHugeCounts) {
  EXPECT_EQ(bitsForStates(1ull << 62), 62);
  EXPECT_EQ(bitsForStates((1ull << 63) + 1), 64);
  EXPECT_EQ(bitsForStates(~0ull), 64);
}

}  // namespace
}  // namespace mphls
