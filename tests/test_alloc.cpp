// Tests for data-path allocation: lifetimes, register allocation (left
// edge / clique / naive), clique partitioning itself, functional-unit
// allocation (greedy local/global, interconnect-blind, clique) and
// interconnect (mux and bus) construction. Includes the paper's worked
// examples:
//   - Fig. 6: interconnect-aware greedy allocation beats the blind
//     assignment in multiplexing cost;
//   - Fig. 7: the clique formulation shares one adder among the three
//     compatible operations.
#include <gtest/gtest.h>

#include "alloc/clique.h"
#include "alloc/fu_alloc.h"
#include "alloc/interconnect.h"
#include "alloc/lifetime.h"
#include "alloc/reg_alloc.h"
#include "lang/frontend.h"
#include "sched/list_sched.h"
#include "sched/sched_util.h"

namespace mphls {
namespace {

const char* kSqrtSrc = R"(
  proc sqrt(in x: uint<16>, out y: uint<16>) {
    var i: uint<2>;
    y = trunc<16>((zext<32>(x) * 3641) >> 12) + 910;
    i = 0;
    do {
      y = (y + trunc<16>((zext<32>(x) << 12) / zext<32>(y))) >> 1;
      i = i + 1;
    } until (i == 0);
  }
)";

struct Flow {
  Function fn;
  Schedule sched;
  LifetimeInfo lt;
  RegAssignment regs;

  explicit Flow(const char* src, int fuCount = 2)
      : fn(compileBdlOrThrow(src)),
        sched(scheduleFunction(fn, [&](const BlockDeps& d) {
          return listSchedule(d, ResourceLimits::universalSet(fuCount),
                              ListPriority::PathLength);
        })),
        lt(computeLifetimes(fn, sched)),
        regs(allocateRegisters(lt)) {}
};

// ----------------------------------------------------------------- lifetime

TEST(Lifetime, RootLooksThroughFreeOps) {
  Function fn = compileBdlOrThrow(
      "proc f(in a: uint<8>, out y: uint<16>) { y = zext<16>(a >> 2) + 1; }");
  // Find the add's first operand; its root must be the ReadPort.
  for (const auto& blk : fn.blocks())
    for (OpId oid : blk.ops) {
      const Op& o = fn.op(oid);
      if (o.kind == OpKind::Add || o.kind == OpKind::Inc) {
        ValueId root = rootValue(fn, o.args[0]);
        EXPECT_EQ(fn.defOf(root).kind, OpKind::ReadPort);
        return;
      }
    }
  FAIL() << "no add found";
}

TEST(Lifetime, TempCrossingStepGetsItem) {
  Flow flow(
      "proc f(in a: uint<8>, in b: uint<8>, out y: uint<8>) {"
      "  y = a * b + b * (a + 1);"  // products cross a step with 1 FU
      "}",
      /*fuCount=*/1);
  EXPECT_GT(flow.lt.items.size(), 0u);
  bool sawTemp = false;
  for (const auto& it : flow.lt.items)
    if (it.kind == StorageItem::Kind::Temp) sawTemp = true;
  EXPECT_TRUE(sawTemp);
}

TEST(Lifetime, SameStepValueNeedsNoRegister) {
  Flow flow(
      "proc f(in a: uint<8>, out y: uint<8>) { y = a + 1; }");
  // The inc result is written in the same step; no temp item needed.
  for (const auto& it : flow.lt.items)
    EXPECT_NE(it.kind, StorageItem::Kind::Temp);
}

TEST(Lifetime, LoopVariableSpansLoop) {
  Flow flow(kSqrtSrc);
  int iItem = -1;
  for (std::size_t k = 0; k < flow.lt.items.size(); ++k)
    if (flow.lt.items[k].name == "i") iItem = (int)k;
  ASSERT_GE(iItem, 0);
  // i is loop-carried: it must span the whole body block.
  BlockId body = flow.fn.findBlock("do_body_0");
  int base = flow.lt.blockBase[body.index()];
  int len = flow.sched.of(body).numSteps;
  EXPECT_LE(flow.lt.items[(std::size_t)iItem].live.birth, base);
  EXPECT_GE(flow.lt.items[(std::size_t)iItem].live.death, base + len);
}

TEST(Lifetime, MaxOverlapIsPositiveOnSqrt) {
  Flow flow(kSqrtSrc);
  EXPECT_GE(flow.lt.maxOverlap(), 2);  // x is not stored; y and i are live
}

// ----------------------------------------------------------------- cliques

TEST(Clique, GreedyCoversTriangle) {
  CompatGraph g(3);
  g.addEdge(0, 1);
  g.addEdge(1, 2);
  g.addEdge(0, 2);
  auto cover = cliquePartition(g);
  EXPECT_EQ(cover.count, 1u);
  EXPECT_TRUE(coverIsValid(g, cover));
}

TEST(Clique, DisconnectedNodesGetOwnCliques) {
  CompatGraph g(4);  // no edges
  auto cover = cliquePartition(g);
  EXPECT_EQ(cover.count, 4u);
}

TEST(Clique, GreedyMatchesExactOnSmallGraphs) {
  // Pentagon (5-cycle): chromatic-style cover needs 3 cliques.
  CompatGraph g(5);
  for (int i = 0; i < 5; ++i) g.addEdge((std::size_t)i, (std::size_t)((i + 1) % 5));
  auto exact = cliquePartitionExact(g);
  EXPECT_EQ(exact.count, 3u);
  auto greedy = cliquePartition(g);
  EXPECT_TRUE(coverIsValid(g, greedy));
  EXPECT_GE(greedy.count, exact.count);
}

TEST(Clique, CoverValidityDetectsBrokenCover) {
  CompatGraph g(2);  // 0 and 1 incompatible
  CliqueCover bad;
  bad.group = {0, 0};
  bad.count = 1;
  EXPECT_FALSE(coverIsValid(g, bad));
}

// ------------------------------------------------------------ register alloc

TEST(RegAlloc, LeftEdgeAchievesMaxOverlap) {
  Flow flow(kSqrtSrc);
  auto regs = allocateRegisters(flow.lt, RegAllocMethod::LeftEdge);
  EXPECT_EQ(validateRegAssignment(flow.lt, regs), "");
  // Left edge is optimal for interval graphs.
  EXPECT_EQ(regs.numRegs, flow.lt.maxOverlap());
}

TEST(RegAlloc, CliqueMatchesLeftEdgeOnSqrt) {
  Flow flow(kSqrtSrc);
  auto le = allocateRegisters(flow.lt, RegAllocMethod::LeftEdge);
  auto cq = allocateRegisters(flow.lt, RegAllocMethod::Clique);
  EXPECT_EQ(validateRegAssignment(flow.lt, cq), "");
  EXPECT_EQ(cq.numRegs, le.numRegs);
}

TEST(RegAlloc, NaiveUsesOneRegisterPerItem) {
  Flow flow(kSqrtSrc);
  auto na = allocateRegisters(flow.lt, RegAllocMethod::Naive);
  EXPECT_EQ(validateRegAssignment(flow.lt, na), "");
  int nonEmpty = 0;
  for (const auto& it : flow.lt.items)
    if (!it.live.empty()) ++nonEmpty;
  EXPECT_EQ(na.numRegs, nonEmpty);
  auto le = allocateRegisters(flow.lt, RegAllocMethod::LeftEdge);
  EXPECT_LE(le.numRegs, na.numRegs);
}

TEST(RegAlloc, WidthsCoverItems) {
  Flow flow(kSqrtSrc);
  auto regs = allocateRegisters(flow.lt);
  for (std::size_t i = 0; i < flow.lt.items.size(); ++i) {
    int r = regs.regOfItem[i];
    if (r < 0) continue;
    EXPECT_GE(regs.regWidth[(std::size_t)r], flow.lt.items[i].width);
  }
}

// --------------------------------------------------------------- FU alloc

/// Fig. 6-style fixture: two adders' worth of parallelism where source
/// reuse matters. Step 0: a1 = va+vb, a1b = vc+vd. Step 1: a2 = vc+vd,
/// a3 = va+vb. Interconnect-aware allocation puts a2 on the unit already
/// fed by vc/vd (zero new mux legs); the blind first-idle rule crosses
/// the sources and pays four extra legs.
Function buildFig6() {
  Function fn("fig6");
  BlockId b = fn.addBlock("entry");
  PortId pa = fn.addInput("a", 8);
  PortId pb = fn.addInput("b", 8);
  PortId pc = fn.addInput("c", 8);
  PortId pd = fn.addInput("d", 8);
  ValueId va = fn.emitRead(b, pa);
  ValueId vb = fn.emitRead(b, pb);
  ValueId vc = fn.emitRead(b, pc);
  ValueId vd = fn.emitRead(b, pd);
  ValueId a1 = fn.emitBinary(b, OpKind::Add, va, vb);
  ValueId a1b = fn.emitBinary(b, OpKind::Add, vc, vd);
  // Force step separation through variables written by step-0 ops.
  VarId t1 = fn.addVar("t1", 8);
  VarId t2 = fn.addVar("t2", 8);
  fn.emitStore(b, t1, a1);
  fn.emitStore(b, t2, a1b);
  ValueId l1 = fn.emitLoad(b, t1);
  ValueId l2 = fn.emitLoad(b, t2);
  ValueId a2 = fn.emitBinary(b, OpKind::Add, vc, vd);
  ValueId a3 = fn.emitBinary(b, OpKind::Add, va, vb);
  PortId q0 = fn.addOutput("q0", 8);
  PortId q1 = fn.addOutput("q1", 8);
  ValueId s1 = fn.emitBinary(b, OpKind::Xor, a2, l1);
  ValueId s2 = fn.emitBinary(b, OpKind::Xor, a3, l2);
  fn.emitWrite(b, q0, s1);
  fn.emitWrite(b, q1, s2);
  fn.setReturn(b);
  return fn;
}

struct RawFlow {
  Function fn;
  Schedule sched;
  LifetimeInfo lt;
  RegAssignment regs;
  HwLibrary lib = HwLibrary::defaultLibrary();

  explicit RawFlow(Function f, const ResourceLimits& limits)
      : fn(std::move(f)),
        sched(scheduleFunction(fn, [&](const BlockDeps& d) {
          return listSchedule(d, limits, ListPriority::PathLength);
        })),
        lt(computeLifetimes(fn, sched)),
        regs(allocateRegisters(lt)) {}

  [[nodiscard]] FuBinding alloc(FuAllocMethod m) const {
    return allocateFus(fn, sched, lt, regs, lib, m);
  }
  [[nodiscard]] InterconnectResult wires(const FuBinding& b) const {
    return buildInterconnect(fn, sched, lt, regs, b, lib);
  }
};

TEST(FuAlloc, Fig6AwareBeatsBlind) {
  RawFlow flow(buildFig6(),
               ResourceLimits::withClasses(
                   {{FuClass::Adder, 2}, {FuClass::Logic, 2}}));
  FuBinding aware = flow.alloc(FuAllocMethod::GreedyLocal);
  FuBinding blind = flow.alloc(FuAllocMethod::InterconnectBlind);
  EXPECT_EQ(validateFuBinding(flow.fn, flow.sched, aware, flow.lib), "");
  EXPECT_EQ(validateFuBinding(flow.fn, flow.sched, blind, flow.lib), "");
  auto icAware = flow.wires(aware);
  auto icBlind = flow.wires(blind);
  EXPECT_EQ(validateInterconnect(icAware), "");
  EXPECT_EQ(validateInterconnect(icBlind), "");
  // The paper's Fig. 6 claim: checking interconnection costs yields
  // cheaper multiplexing than ignoring them.
  EXPECT_LT(icAware.muxArea, icBlind.muxArea);
}

TEST(FuAlloc, Fig7CliqueSharesAdderAcrossSteps) {
  // a1,a2 in step 0; a3 in step 1; a4 in step 2 (paper's compatibility
  // shape): the cover uses 2 adders, one executing 3 operations.
  Function fn("fig7");
  BlockId b = fn.addBlock("entry");
  PortId pa = fn.addInput("a", 8);
  PortId pb = fn.addInput("b", 8);
  ValueId va = fn.emitRead(b, pa);
  ValueId vb = fn.emitRead(b, pb);
  ValueId a1 = fn.emitBinary(b, OpKind::Add, va, vb);
  ValueId a2 = fn.emitBinary(b, OpKind::Add, vb, va);
  ValueId a3 = fn.emitBinary(b, OpKind::Add, a1, a2);
  ValueId a4 = fn.emitBinary(b, OpKind::Add, a3, va);
  PortId q = fn.addOutput("q", 8);
  fn.emitWrite(b, q, a4);
  fn.setReturn(b);

  RawFlow flow(std::move(fn), ResourceLimits::unlimited());
  FuBinding cb = flow.alloc(FuAllocMethod::Clique);
  EXPECT_EQ(validateFuBinding(flow.fn, flow.sched, cb, flow.lib), "");
  EXPECT_EQ(cb.numFus(), 2);
  // One unit runs three of the four additions.
  std::map<int, int> opCount;
  for (const auto& blkOps : cb.fuOfOp)
    for (int f : blkOps)
      if (f >= 0) ++opCount[f];
  int maxOps = 0;
  for (auto& [f, n] : opCount) maxOps = std::max(maxOps, n);
  EXPECT_EQ(maxOps, 3);
}

TEST(FuAlloc, AllMethodsValidOnSqrt) {
  RawFlow flow(compileBdlOrThrow(kSqrtSrc), ResourceLimits::universalSet(2));
  for (auto m : {FuAllocMethod::GreedyLocal, FuAllocMethod::GreedyGlobal,
                 FuAllocMethod::InterconnectBlind, FuAllocMethod::Clique}) {
    FuBinding bind = flow.alloc(m);
    EXPECT_EQ(validateFuBinding(flow.fn, flow.sched, bind, flow.lib), "")
        << fuAllocMethodName(m);
    auto ic = flow.wires(bind);
    EXPECT_EQ(validateInterconnect(ic), "") << fuAllocMethodName(m);
  }
}

TEST(FuAlloc, GlobalSelectionNoWorseThanLocalOnFig6) {
  RawFlow flow(buildFig6(),
               ResourceLimits::withClasses(
                   {{FuClass::Adder, 2}, {FuClass::Logic, 2}}));
  auto icLocal = flow.wires(flow.alloc(FuAllocMethod::GreedyLocal));
  auto icGlobal = flow.wires(flow.alloc(FuAllocMethod::GreedyGlobal));
  EXPECT_LE(icGlobal.muxArea, icLocal.muxArea + 1e-9);
}

TEST(FuAlloc, DividerAndMultiplierStaySeparate) {
  RawFlow flow(compileBdlOrThrow(kSqrtSrc), ResourceLimits::universalSet(2));
  FuBinding bind = flow.alloc(FuAllocMethod::GreedyLocal);
  // No library component does both mul and div: they must be on
  // different units.
  for (const auto& fu : bind.fus) {
    bool hasMul = fu.performs(OpKind::Mul);
    bool hasDiv = fu.performs(OpKind::UDiv) || fu.performs(OpKind::Div);
    EXPECT_FALSE(hasMul && hasDiv);
  }
}

// ------------------------------------------------------------- interconnect

TEST(Interconnect, TransfersCoverSinks) {
  RawFlow flow(compileBdlOrThrow(kSqrtSrc), ResourceLimits::universalSet(2));
  auto ic = flow.wires(flow.alloc(FuAllocMethod::GreedyLocal));
  EXPECT_EQ(validateInterconnect(ic), "");
  bool sawRegWrite = false, sawPortWrite = false;
  for (const auto& t : ic.transfers) {
    if (t.destKind == Transfer::DestKind::Reg) sawRegWrite = true;
    if (t.destKind == Transfer::DestKind::OutPort) sawPortWrite = true;
  }
  EXPECT_TRUE(sawRegWrite);
  EXPECT_TRUE(sawPortWrite);
}

TEST(Interconnect, BusCountAtLeastPeakParallelTransfers) {
  RawFlow flow(compileBdlOrThrow(kSqrtSrc), ResourceLimits::universalSet(2));
  auto ic = flow.wires(flow.alloc(FuAllocMethod::GreedyLocal));
  std::map<int, std::set<std::pair<int, std::int64_t>>> perStepSources;
  for (const auto& t : ic.transfers)
    perStepSources[t.step].insert({(int)t.src.kind * 1000 + t.src.id, t.src.imm});
  std::size_t peak = 0;
  for (auto& [s, set] : perStepSources) peak = std::max(peak, set.size());
  EXPECT_GE((std::size_t)ic.numBuses, peak);
}

TEST(Interconnect, MuxAreaGrowsWithSharing) {
  // One universal FU forces heavy multiplexing; two relax it.
  RawFlow one(compileBdlOrThrow(kSqrtSrc), ResourceLimits::universalSet(1));
  RawFlow two(compileBdlOrThrow(kSqrtSrc), ResourceLimits::universalSet(2));
  auto icOne = one.wires(one.alloc(FuAllocMethod::GreedyLocal));
  auto icTwo = two.wires(two.alloc(FuAllocMethod::GreedyLocal));
  EXPECT_EQ(validateInterconnect(icOne), "");
  EXPECT_EQ(validateInterconnect(icTwo), "");
  EXPECT_GT(icOne.muxArea, 0.0);
}

}  // namespace
}  // namespace mphls
