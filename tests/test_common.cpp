// Unit tests for src/common: ids, bit utilities, intervals, disjoint sets,
// fixed-point helpers, diagnostics.
#include <gtest/gtest.h>

#include "common/bitutil.h"
#include "common/diag.h"
#include "common/disjoint_set.h"
#include "common/fixedpoint.h"
#include "common/ids.h"
#include "common/interval.h"

namespace mphls {
namespace {

TEST(Ids, DefaultIsInvalid) {
  OpId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, OpId::invalid());
}

TEST(Ids, ValueRoundTrip) {
  ValueId id(7u);
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.get(), 7u);
  EXPECT_EQ(id.index(), 7u);
}

TEST(Ids, Ordering) {
  BlockId a(1u), b(2u);
  EXPECT_LT(a, b);
  EXPECT_NE(a, b);
  EXPECT_LE(a, a);
}

TEST(Ids, DistinctFamiliesAreDistinctTypes) {
  static_assert(!std::is_same_v<OpId, ValueId>);
  static_assert(!std::is_same_v<RegId, FuId>);
}

TEST(Ids, Hashable) {
  std::hash<OpId> h;
  EXPECT_EQ(h(OpId(3u)), h(OpId(3u)));
}

TEST(BitUtil, BitsForStates) {
  EXPECT_EQ(bitsForStates(0), 1);
  EXPECT_EQ(bitsForStates(1), 1);
  EXPECT_EQ(bitsForStates(2), 1);
  EXPECT_EQ(bitsForStates(3), 2);
  EXPECT_EQ(bitsForStates(4), 2);
  EXPECT_EQ(bitsForStates(5), 3);
  EXPECT_EQ(bitsForStates(256), 8);
  EXPECT_EQ(bitsForStates(257), 9);
}

TEST(BitUtil, PowerOfTwo) {
  EXPECT_FALSE(isPowerOfTwo(0));
  EXPECT_TRUE(isPowerOfTwo(1));
  EXPECT_TRUE(isPowerOfTwo(2));
  EXPECT_FALSE(isPowerOfTwo(3));
  EXPECT_TRUE(isPowerOfTwo(1ULL << 40));
  EXPECT_FALSE(isPowerOfTwo((1ULL << 40) + 1));
}

TEST(BitUtil, Log2Floor) {
  EXPECT_EQ(log2Floor(1), 0);
  EXPECT_EQ(log2Floor(2), 1);
  EXPECT_EQ(log2Floor(3), 1);
  EXPECT_EQ(log2Floor(1024), 10);
}

TEST(BitUtil, MaskAndTrunc) {
  EXPECT_EQ(maskBits(1), 1u);
  EXPECT_EQ(maskBits(8), 0xFFu);
  EXPECT_EQ(maskBits(64), ~0ULL);
  EXPECT_EQ(truncBits(0x1FF, 8), 0xFFu);
  EXPECT_EQ(truncBits(0x100, 8), 0u);
}

TEST(BitUtil, SignExtend) {
  EXPECT_EQ(signExtend(0xF, 4), -1);
  EXPECT_EQ(signExtend(0x7, 4), 7);
  EXPECT_EQ(signExtend(0x80, 8), -128);
  EXPECT_EQ(signExtend(0xFFFFFFFFFFFFFFFFull, 64), -1);
}

TEST(BitUtil, ToBinary) {
  EXPECT_EQ(toBinary(5, 4), "0101");
  EXPECT_EQ(toBinary(0, 3), "000");
  EXPECT_EQ(toBinary(7, 3), "111");
}

TEST(Interval, OverlapRules) {
  LiveInterval a{0, 3}, b{3, 5}, c{2, 4};
  EXPECT_FALSE(a.overlaps(b));  // half-open: touching intervals don't overlap
  EXPECT_TRUE(a.overlaps(c));
  EXPECT_TRUE(c.overlaps(b));
  EXPECT_TRUE(a.contains(0));
  EXPECT_FALSE(a.contains(3));
}

TEST(Interval, EmptyAndLength) {
  LiveInterval e{4, 4};
  EXPECT_TRUE(e.empty());
  EXPECT_EQ(e.length(), 0);
  EXPECT_EQ((LiveInterval{1, 5}).length(), 4);
}

TEST(DisjointSet, UniteAndFind) {
  DisjointSet ds(5);
  EXPECT_TRUE(ds.unite(0, 1));
  EXPECT_TRUE(ds.unite(1, 2));
  EXPECT_FALSE(ds.unite(0, 2));
  EXPECT_TRUE(ds.same(0, 2));
  EXPECT_FALSE(ds.same(0, 3));
  EXPECT_EQ(ds.sizeOf(2), 3u);
  EXPECT_EQ(ds.sizeOf(4), 1u);
}

TEST(FixedPoint, RoundTrip) {
  const int kFrac = 12;
  double x = 0.222222;
  auto raw = toFixed(x, kFrac);
  EXPECT_NEAR(fromFixed(raw, kFrac), x, 1.0 / (1 << kFrac));
}

TEST(FixedPoint, MulDiv) {
  const int kFrac = 12;
  auto a = toFixed(0.5, kFrac);
  auto b = toFixed(0.25, kFrac);
  EXPECT_NEAR(fromFixed(fixedMul(a, b, kFrac), kFrac), 0.125, 0.001);
  EXPECT_NEAR(fromFixed(fixedDiv(b, a, kFrac), kFrac), 0.5, 0.001);
}

TEST(Diag, ErrorsGateOk) {
  DiagEngine d;
  EXPECT_TRUE(d.ok());
  d.warning({1, 1}, "just a warning");
  EXPECT_TRUE(d.ok());
  d.error({2, 3}, "boom");
  EXPECT_FALSE(d.ok());
  EXPECT_EQ(d.errorCount(), 1u);
  EXPECT_NE(d.summary().find("2:3"), std::string::npos);
}

TEST(Diag, CheckMacroThrows) {
  EXPECT_THROW(MPHLS_CHECK(false, "intentional"), InternalError);
}

}  // namespace
}  // namespace mphls
