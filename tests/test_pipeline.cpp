// Tests for Sehwa-style pipeline (modulo) scheduling.
#include <gtest/gtest.h>

#include "lang/frontend.h"
#include "opt/pass.h"
#include "sched/pipeline.h"

namespace mphls {
namespace {

Function firBlock() {
  Function fn = compileBdlOrThrow(
      "proc fir4(in x0: uint<16>, in x1: uint<16>, in x2: uint<16>,"
      " in x3: uint<16>, out y: uint<32>) {"
      "  y = zext<32>(x0) * 7 + zext<32>(x1) * 23"
      "    + zext<32>(x2) * 23 + zext<32>(x3) * 7;"
      "}");
  optimize(fn);
  return fn;
}

TEST(Pipeline, IiOneNeedsOneUnitPerConcurrentOp) {
  Function fn = firBlock();
  BlockDeps deps(fn, fn.block(fn.entry()));
  PipelineResult pr = pipelineSchedule(deps, 1);
  ASSERT_TRUE(pr.feasible);
  EXPECT_EQ(validatePipelineSchedule(deps, pr), "");
  // Every sample issues a fresh set of operations each step: the pipeline
  // needs as many units of a class as the block has operations of it.
  EXPECT_EQ(pr.unitsRequired.at(FuClass::Multiplier), 4);
  EXPECT_EQ(pr.unitsRequired.at(FuClass::Adder), 3);
  EXPECT_DOUBLE_EQ(pr.throughput(), 1.0);
}

TEST(Pipeline, LargerIiNeedsFewerUnits) {
  Function fn = firBlock();
  BlockDeps deps(fn, fn.block(fn.entry()));
  PipelineResult p1 = pipelineSchedule(deps, 1);
  PipelineResult p2 = pipelineSchedule(deps, 2);
  PipelineResult p4 = pipelineSchedule(deps, 4);
  ASSERT_TRUE(p1.feasible && p2.feasible && p4.feasible);
  EXPECT_EQ(validatePipelineSchedule(deps, p2), "");
  EXPECT_EQ(validatePipelineSchedule(deps, p4), "");
  EXPECT_LE(p2.unitsRequired.at(FuClass::Multiplier),
            p1.unitsRequired.at(FuClass::Multiplier));
  EXPECT_LE(p4.unitsRequired.at(FuClass::Multiplier),
            p2.unitsRequired.at(FuClass::Multiplier));
  EXPECT_EQ(p4.unitsRequired.at(FuClass::Multiplier), 1);
}

TEST(Pipeline, ResourceCapsStretchOrRejectIi) {
  Function fn = firBlock();
  BlockDeps deps(fn, fn.block(fn.entry()));
  auto oneMul = ResourceLimits::withClasses({{FuClass::Multiplier, 1}});
  // One multiplier cannot sustain II=1 with four multiplies per sample.
  PipelineResult tight = pipelineSchedule(deps, 1, oneMul);
  EXPECT_FALSE(tight.feasible);
  // ...but II=4 folds the four multiplies onto one unit.
  PipelineResult ok = pipelineSchedule(deps, 4, oneMul);
  ASSERT_TRUE(ok.feasible);
  EXPECT_EQ(validatePipelineSchedule(deps, ok), "");
  EXPECT_EQ(ok.unitsRequired.at(FuClass::Multiplier), 1);
}

TEST(Pipeline, ExplorationCurveIsMonotone) {
  Function fn = firBlock();
  BlockDeps deps(fn, fn.block(fn.entry()));
  auto curve = explorePipelines(deps);
  ASSERT_GE(curve.size(), 2u);
  int prevMuls = INT32_MAX;
  for (const auto& pr : curve) {
    ASSERT_TRUE(pr.feasible) << "II=" << pr.initiationInterval;
    EXPECT_EQ(validatePipelineSchedule(deps, pr), "");
    int muls = pr.unitsRequired.count(FuClass::Multiplier)
                   ? pr.unitsRequired.at(FuClass::Multiplier)
                   : 0;
    EXPECT_LE(muls, prevMuls) << "II=" << pr.initiationInterval;
    prevMuls = muls;
  }
  // Latency (per-sample steps) never beats the dependence-critical path.
  for (const auto& pr : curve)
    EXPECT_GE(pr.schedule.numSteps, curve.front().schedule.numSteps);
}

TEST(Pipeline, LatencyStaysNearCritical) {
  // Balancing ops across the II frame may slip each dependence level by at
  // most II-1 steps; per-sample latency stays within that bound of the
  // dependence-critical schedule.
  Function fn = firBlock();
  BlockDeps deps(fn, fn.block(fn.entry()));
  LevelInfo li = computeLevels(deps);
  for (int ii = 1; ii <= 4; ++ii) {
    PipelineResult pr = pipelineSchedule(deps, ii);
    ASSERT_TRUE(pr.feasible);
    EXPECT_GE(pr.schedule.numSteps, li.criticalLength);
    EXPECT_LE(pr.schedule.numSteps,
              li.criticalLength + (ii - 1) * li.criticalLength);
  }
}

}  // namespace
}  // namespace mphls
