// Tests for the symbolic equivalence engine (src/sec/): the CDCL SAT core
// on known sat/unsat instances, expression normalization (idempotence, AC
// canonicalization, constant folding through evalPure), the bit-blaster
// cross-checked against the interpreter's arithmetic, the behavioral-vs-RTL
// sequential prover over every built-in design at every optimization
// level, per-pass translation validation, and — the gate's self-test —
// must-fail proofs for each injected miscompile. Also pins the diagnostics
// engine's deterministic ordering and JSON rendering.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "check/report.h"
#include "common/bitutil.h"
#include "core/designs.h"
#include "core/synthesizer.h"
#include "fuzz/diff_runner.h"
#include "ir/interp.h"
#include "lang/frontend.h"
#include "sec/bitblast.h"
#include "sec/expr.h"
#include "sec/passes.h"
#include "sec/prove.h"
#include "sec/sat.h"

namespace mphls {
namespace {

// ------------------------------------------------------------ SAT solver

TEST(SecSat, UnitPropagationSat) {
  sec::SatSolver s;
  int a = s.newVar(), b = s.newVar();
  s.addClause({sec::SatSolver::lit(a, false), sec::SatSolver::lit(b, false)});
  s.addClause({sec::SatSolver::lit(a, true)});  // ~a
  ASSERT_EQ(s.solve(), sec::SatSolver::Result::Sat);
  EXPECT_FALSE(s.modelValue(a));
  EXPECT_TRUE(s.modelValue(b));
}

TEST(SecSat, TrivialConflictUnsat) {
  sec::SatSolver s;
  int a = s.newVar(), b = s.newVar();
  s.addClause({sec::SatSolver::lit(a, false), sec::SatSolver::lit(b, false)});
  s.addClause({sec::SatSolver::lit(a, true)});
  s.addClause({sec::SatSolver::lit(b, true)});
  EXPECT_EQ(s.solve(), sec::SatSolver::Result::Unsat);
}

TEST(SecSat, EmptyClauseUnsat) {
  sec::SatSolver s;
  s.newVar();
  s.addClause({});
  EXPECT_EQ(s.solve(), sec::SatSolver::Result::Unsat);
}

/// Pigeonhole instance: `pigeons` into `holes`. UNSAT when pigeons > holes;
/// requires genuine conflict-driven search, not just propagation.
sec::SatSolver::Result solvePigeonhole(int pigeons, int holes, long budget) {
  sec::SatSolver s;
  std::vector<std::vector<int>> x((std::size_t)pigeons);
  for (int p = 0; p < pigeons; ++p)
    for (int h = 0; h < holes; ++h)
      x[(std::size_t)p].push_back(s.newVar());
  for (int p = 0; p < pigeons; ++p) {
    std::vector<int> clause;
    for (int h = 0; h < holes; ++h)
      clause.push_back(sec::SatSolver::lit(x[(std::size_t)p][(std::size_t)h],
                                           false));
    s.addClause(std::move(clause));
  }
  for (int h = 0; h < holes; ++h)
    for (int p = 0; p < pigeons; ++p)
      for (int q = p + 1; q < pigeons; ++q)
        s.addClause(
            {sec::SatSolver::lit(x[(std::size_t)p][(std::size_t)h], true),
             sec::SatSolver::lit(x[(std::size_t)q][(std::size_t)h], true)});
  return s.solve(budget);
}

TEST(SecSat, Pigeonhole4Into3Unsat) {
  EXPECT_EQ(solvePigeonhole(4, 3, -1), sec::SatSolver::Result::Unsat);
}

TEST(SecSat, Pigeonhole3Into3Sat) {
  EXPECT_EQ(solvePigeonhole(3, 3, -1), sec::SatSolver::Result::Sat);
}

TEST(SecSat, BudgetExhaustionReportsUnknown) {
  // 7-into-6 needs far more than two conflicts; the budget must surface as
  // an explicit Unknown, never a wrong verdict or a hang.
  EXPECT_EQ(solvePigeonhole(7, 6, 2), sec::SatSolver::Result::Unknown);
}

// ------------------------------------------------ expression normalization

TEST(SecExpr, HashConsingIsIdempotent) {
  sec::ExprContext ctx;
  int a = ctx.mkVar("a", 16);
  int b = ctx.mkVar("b", 16);
  int n1 = ctx.mkOp(OpKind::Add, 16, 0, {a, b});
  int n2 = ctx.mkOp(OpKind::Add, 16, 0, {b, a});  // commuted
  int n3 = ctx.mkOp(OpKind::Add, 16, 0, {a, b});  // repeated
  EXPECT_EQ(n1, n2);
  EXPECT_EQ(n1, n3);
}

TEST(SecExpr, ConstantFoldingMatchesEvalPure) {
  sec::ExprContext ctx;
  int c1 = ctx.mkConst(200, 8);
  int c2 = ctx.mkConst(100, 8);
  int sum = ctx.mkOp(OpKind::Add, 8, 0, {c1, c2});
  std::uint64_t v = 0;
  ASSERT_TRUE(ctx.constValue(sum, v));
  EXPECT_EQ(v, Interpreter::evalPure(OpKind::Add, 8, 0, {200, 100}, {8, 8}));
  EXPECT_EQ(v, 44u);  // (200 + 100) mod 256
}

TEST(SecExpr, AcChainsCanonicalizeAcrossReassociation) {
  sec::ExprContext ctx;
  int a = ctx.mkVar("a", 32);
  int b = ctx.mkVar("b", 32);
  int c = ctx.mkVar("c", 32);
  int d = ctx.mkVar("d", 32);
  auto add = [&](int x, int y) { return ctx.mkOp(OpKind::Add, 32, 0, {x, y}); };
  // Linear chain vs balanced tree vs fully reversed: all one node. This is
  // what keeps the tree-height pass's proof structural.
  int linear = add(add(add(a, b), c), d);
  int tree = add(add(a, b), add(c, d));
  int reversed = add(d, add(c, add(b, a)));
  EXPECT_EQ(linear, tree);
  EXPECT_EQ(linear, reversed);

  auto mul = [&](int x, int y) { return ctx.mkOp(OpKind::Mul, 32, 0, {x, y}); };
  EXPECT_EQ(mul(mul(a, b), c), mul(a, mul(b, c)));
}

TEST(SecExpr, AcChainsFoldConstantLeaves) {
  sec::ExprContext ctx;
  int a = ctx.mkVar("a", 16);
  auto add = [&](int x, int y) { return ctx.mkOp(OpKind::Add, 16, 0, {x, y}); };
  int viaChain = add(add(a, ctx.mkConst(3, 16)), ctx.mkConst(5, 16));
  int direct = add(a, ctx.mkConst(8, 16));
  EXPECT_EQ(viaChain, direct);
  // Identity element drops out entirely.
  EXPECT_EQ(add(a, ctx.mkConst(0, 16)), a);
}

TEST(SecExpr, XorCancellationAndIdempotence) {
  sec::ExprContext ctx;
  int a = ctx.mkVar("a", 8);
  int b = ctx.mkVar("b", 8);
  int axb = ctx.mkOp(OpKind::Xor, 8, 0, {a, b});
  int zero = ctx.mkOp(OpKind::Xor, 8, 0, {axb, axb});
  std::uint64_t v = 1;
  ASSERT_TRUE(ctx.constValue(zero, v));
  EXPECT_EQ(v, 0u);
  EXPECT_EQ(ctx.mkOp(OpKind::Xor, 8, 0, {axb, b}), a);
  int aab = ctx.mkOp(OpKind::And, 8, 0, {a, b});
  EXPECT_EQ(ctx.mkOp(OpKind::And, 8, 0, {aab, a}), aab);
}

TEST(SecExpr, ResizeRoundTripCollapses) {
  sec::ExprContext ctx;
  int a = ctx.mkVar("a", 8);
  // zext_16(x_8) truncated back to 8 is x.
  EXPECT_EQ(ctx.resize(ctx.resize(a, 16), 8), a);
}

// ------------------------------------------------------------- bit-blaster

/// Cross-check one op against evalPure: blast `op(vars...) == evalPure
/// result` under assumptions pinning each var to its concrete pattern;
/// the miter must be UNSAT (Equal).
void crossCheck(OpKind op, int width, std::int64_t imm,
                std::vector<std::uint64_t> vals,
                const std::vector<int>& widths) {
  sec::ExprContext ctx;
  std::vector<int> vars;
  std::vector<int> assumptions;
  // Raw patterns always fit their width (the interpreter's invariant).
  for (std::size_t i = 0; i < vals.size(); ++i)
    vals[i] = truncBits(vals[i], widths[i]);
  for (std::size_t i = 0; i < vals.size(); ++i) {
    // Sequential append: GCC 12 -Wrestrict -O3 false positive (see vcd.cpp).
    std::string vname = "v";
    vname += std::to_string(i);
    int v = ctx.mkVar(vname, widths[i]);
    vars.push_back(v);
    assumptions.push_back(ctx.mkOp(
        OpKind::Eq, 1, 0, {v, ctx.mkConst(vals[i], widths[i])}));
  }
  int node = ctx.mkOp(op, width, imm, vars);
  std::uint64_t expect = Interpreter::evalPure(op, width, imm, vals, widths);
  sec::ProveResult r = sec::proveEqual(ctx, node,
                                       ctx.mkConst(expect, width),
                                       assumptions);
  EXPECT_TRUE(r.equal()) << opName(op) << " width " << width << " disagrees "
                         << "with evalPure";
}

TEST(SecBlast, MatchesEvalPureOnMixedWidthPatterns) {
  // A sweep over the arithmetic fragment with deliberately awkward
  // patterns: sign bits set, mixed operand widths, div-by-zero.
  const std::vector<std::pair<std::uint64_t, std::uint64_t>> pats = {
      {0, 0}, {1, 3}, {0x80, 0x7f}, {0xff, 0xff}, {0xAA, 0x55}, {37, 0}};
  const std::vector<OpKind> kinds = {
      OpKind::Add, OpKind::Sub, OpKind::Mul, OpKind::Div,  OpKind::UDiv,
      OpKind::Mod, OpKind::UMod, OpKind::And, OpKind::Or,  OpKind::Xor,
      OpKind::Shl, OpKind::Shr,  OpKind::Sar, OpKind::Eq,  OpKind::Ne,
      OpKind::Lt,  OpKind::Le,   OpKind::ULt, OpKind::UGe};
  for (OpKind k : kinds) {
    int width = opIsCompare(k) ? 1 : 8;
    for (const auto& [x, y] : pats) {
      crossCheck(k, width, 0, {x, y}, {8, 8});
      crossCheck(k, width, 0, {x, y}, {8, 5});  // mixed operand widths
    }
  }
  crossCheck(OpKind::SExt, 16, 0, {0x80}, {8});
  crossCheck(OpKind::SExt, 16, 0, {0x7f}, {8});
  crossCheck(OpKind::Trunc, 4, 0, {0xff}, {8});
  crossCheck(OpKind::SarConst, 8, 3, {0x90}, {8});
  crossCheck(OpKind::ShlConst, 8, 3, {0x90}, {8});
  crossCheck(OpKind::Select, 8, 0, {1, 0x12, 0x34}, {1, 8, 8});
  crossCheck(OpKind::Select, 8, 0, {0, 0x12, 0x34}, {1, 8, 8});
}

TEST(SecBlast, StructuralDischargeSkipsSat) {
  sec::ExprContext ctx;
  int a = ctx.mkVar("a", 32);
  int b = ctx.mkVar("b", 32);
  int n1 = ctx.mkOp(OpKind::Mul, 32, 0, {a, b});
  int n2 = ctx.mkOp(OpKind::Mul, 32, 0, {b, a});
  sec::ProveResult r = sec::proveEqual(ctx, n1, n2);
  EXPECT_TRUE(r.equal());
  EXPECT_TRUE(r.structural);
}

TEST(SecBlast, InequivalenceYieldsCounterexample) {
  sec::ExprContext ctx;
  int a = ctx.mkVar("a", 8);
  int b = ctx.mkVar("b", 8);
  sec::ProveResult r = sec::proveEqual(ctx, a, b);
  ASSERT_EQ(r.verdict, sec::ProveResult::Verdict::NotEqual);
  // The witness must actually distinguish the nodes.
  std::uint64_t va = 0, vb = 0;
  for (const auto& [name, val] : r.counterexample) {
    if (name == "a") va = val;
    if (name == "b") vb = val;
  }
  EXPECT_NE(va, vb);
}

// --------------------------------------------- behavioral-vs-RTL sequential

SynthesisOptions proveOptions(OptLevel opt, bool narrow) {
  SynthesisOptions opts;
  opts.opt = opt;
  opts.narrow = narrow;
  return opts;
}

TEST(SecProve, BuiltinsProveCleanAtEveryOptLevel) {
  for (const auto& d : designs::all()) {
    for (OptLevel opt :
         {OptLevel::None, OptLevel::Standard, OptLevel::Aggressive}) {
      for (bool narrow : {false, true}) {
        Synthesizer synth(proveOptions(opt, narrow));
        SynthesisResult r = synth.synthesizeSource(d.source);
        CheckReport rep = sec::proveEquivalence(r.design);
        EXPECT_TRUE(rep.clean())
            << d.name << " opt=" << (int)opt << " narrow=" << narrow << "\n"
            << rep.render();
      }
    }
  }
}

TEST(SecProve, SynthesisOptionProveGateAccepts) {
  SynthesisOptions opts = proveOptions(OptLevel::Standard, false);
  opts.prove = true;  // throws on a failed proof
  Synthesizer synth(opts);
  SynthesisResult r = synth.synthesizeSource(designs::all()[0].source);
  EXPECT_GT(r.stages.prove, 0.0);
}

// ------------------------------------------------- per-pass translation TV

TEST(SecPassTv, PipelinesValidateCleanOnBuiltins) {
  for (const auto& d : designs::all()) {
    for (bool aggressive : {false, true}) {
      Function fn = compileBdlOrThrow(d.source);
      PassManager pm = aggressive ? PassManager::aggressivePipeline()
                                  : PassManager::standardPipeline();
      CheckReport rep;
      sec::runPipelineValidated(pm, fn, rep);
      EXPECT_TRUE(rep.clean()) << d.name << (aggressive ? " aggressive" : "")
                               << "\n" << rep.render();
    }
  }
}

TEST(SecPassTv, NarrowWidthsValidatesCleanOnBuiltins) {
  for (const auto& d : designs::all()) {
    Function fn = compileBdlOrThrow(d.source);
    PassManager::standardPipeline().run(fn);
    PassManager pm;
    pm.add(createNarrowWidthsPass());
    CheckReport rep;
    sec::runPipelineValidated(pm, fn, rep);
    EXPECT_TRUE(rep.clean()) << d.name << "\n" << rep.render();
  }
}

TEST(SecPassTv, UnjustifiedNarrowingFails) {
  Function fn = compileBdlOrThrow(
      "proc f(in a: uint<16>, out y: uint<16>) { y = a + 1; }");
  Function bad = fn.clone();
  // Narrow the add result to a single bit: no analysis fact justifies
  // that, so the width-only validator must reject it.
  bool narrowed = false;
  for (const Value& v : bad.values()) {
    if (bad.defOf(v.id).kind == OpKind::Add && v.width > 1) {
      bad.value(v.id).width = 1;
      narrowed = true;
    }
  }
  ASSERT_TRUE(narrowed);
  CheckReport rep;
  sec::PassTvOptions opts;
  opts.assumeFacts = true;
  EXPECT_FALSE(sec::proveFunctionEquivalence(fn, bad, "bad-narrow", rep,
                                             opts));
  EXPECT_TRUE(rep.has("sec.tv.narrow-overflow")) << rep.render();
}

// ----------------------------------------------------- injected miscompiles

TEST(SecInject, MulToAddIsCaught) {
  for (const auto& d : designs::all()) {
    Function fn = compileBdlOrThrow(d.source);
    Function mutated = fn.clone();
    if (fuzz::injectMulToAdd(mutated) == 0) continue;
    CheckReport rep;
    EXPECT_FALSE(sec::proveFunctionEquivalence(fn, mutated, "inject:mul",
                                               rep));
    EXPECT_TRUE(rep.has("sec.tv.mismatch")) << d.name << "\n" << rep.render();
  }
}

TEST(SecInject, ScheduleShiftIsCaught) {
  int applicable = 0;
  for (const auto& d : designs::all()) {
    Synthesizer synth(proveOptions(OptLevel::None, false));
    SynthesisResult r = synth.synthesizeSource(d.source);
    if (fuzz::injectScheduleShift(r.design) == 0) continue;
    ++applicable;
    CheckReport rep = sec::proveEquivalence(r.design);
    EXPECT_FALSE(rep.clean()) << d.name << ": shifted schedule proved clean";
  }
  EXPECT_GE(applicable, 1) << "no design offered a schedule-shift site";
}

TEST(SecInject, SwappedBindingIsCaught) {
  int applicable = 0;
  for (const auto& d : designs::all()) {
    Synthesizer synth(proveOptions(OptLevel::None, false));
    SynthesisResult r = synth.synthesizeSource(d.source);
    if (fuzz::injectSwappedBinding(r.design) == 0) continue;
    ++applicable;
    CheckReport rep = sec::proveEquivalence(r.design);
    EXPECT_FALSE(rep.clean()) << d.name << ": swapped binding proved clean";
  }
  EXPECT_GE(applicable, 1) << "no design offered a swappable binding";
}

TEST(SecInject, FailedProofReplaysWitnessOnVm) {
  // A mismatch proof decodes its first SAT witness by replaying the
  // input-port assignment through the bytecode co-sim and reports the
  // outcome as a note alongside the error findings.
  int replayed = 0;
  for (const auto& d : designs::all()) {
    Synthesizer synth(proveOptions(OptLevel::None, false));
    SynthesisResult r = synth.synthesizeSource(d.source);
    if (fuzz::injectSwappedBinding(r.design) == 0) continue;
    CheckReport rep = sec::proveEquivalence(r.design);
    if (rep.clean()) continue;
    if (rep.has("sec.cex.replay")) ++replayed;
  }
  EXPECT_GE(replayed, 1) << "no failed proof produced a witness replay note";
}

// ------------------------------------------------- diagnostics determinism

CheckReport scrambledReport() {
  CheckReport rep;
  rep.note("z.note", "where-b", "a note");
  rep.warning("m.warn", "where-a", "a warning");
  rep.error("b.err", "where-2", "second error");
  rep.error("a.err", "where-1", "first error");
  rep.error("a.err", "where-1", "first error");  // exact duplicate
  return rep;
}

TEST(SecReport, SortedIsDeterministicAndDeduped) {
  std::vector<CheckDiag> d = scrambledReport().sorted();
  ASSERT_EQ(d.size(), 4u);  // duplicate collapsed
  EXPECT_EQ(d[0].id, "a.err");  // errors first, id-ordered
  EXPECT_EQ(d[1].id, "b.err");
  EXPECT_EQ(d[2].id, "m.warn");
  EXPECT_EQ(d[3].id, "z.note");
}

TEST(SecReport, FirstErrorKeepsInsertionOrder) {
  // firstError pinpoints the first *reported* failure (the guilty pass in
  // a translation-validation run), independent of presentation order.
  EXPECT_NE(scrambledReport().firstError().find("b.err"), std::string::npos);
}

TEST(SecReport, RenderJsonGolden) {
  CheckReport rep;
  rep.error("sec.tv.mismatch", "pass cse block \"entry\"",
            "variable 'x' differ; counterexample: a=1");
  rep.warning("sec.pass.unsupported", "pass unroll", "CFG changed");
  EXPECT_EQ(
      rep.renderJson(),
      "{\"diagnostics\":["
      "{\"severity\":\"error\",\"code\":\"sec.tv.mismatch\","
      "\"where\":\"pass cse block \\\"entry\\\"\","
      "\"message\":\"variable 'x' differ; counterexample: a=1\"},"
      "{\"severity\":\"warning\",\"code\":\"sec.pass.unsupported\","
      "\"where\":\"pass unroll\",\"message\":\"CFG changed\"}"
      "],\"errors\":1,\"warnings\":1,\"clean\":false}");
}

TEST(SecReport, EmptyReportJson) {
  EXPECT_EQ(CheckReport().renderJson(),
            "{\"diagnostics\":[],\"errors\":0,\"warnings\":0,\"clean\":true}");
}

}  // namespace
}  // namespace mphls
