// Tests for the high-level transformations: each pass individually, the
// pipelines, and — most importantly — behavior preservation: every program
// in the corpus must compute identical outputs before and after every
// optimization level, over a sweep of inputs (the paper's Section 4
// "design verification ... showing that each step in the synthesis process
// preserves the behavior of the initial specification").
#include <gtest/gtest.h>

#include "ir/analysis.h"
#include "ir/deps.h"
#include "ir/interp.h"
#include "ir/verify.h"
#include "lang/frontend.h"
#include "opt/pass.h"

namespace mphls {
namespace {

int countKind(const Function& fn, OpKind k) {
  int n = 0;
  for (const auto& blk : fn.blocks())
    for (OpId oid : blk.ops)
      if (fn.op(oid).kind == k) ++n;
  return n;
}

// ----------------------------------------------------------------- passes

TEST(OptDce, RemovesUnusedPureOps) {
  Function fn = compileBdlOrThrow(
      "proc f(in a: uint<8>, out y: uint<8>) {"
      "  var unused: uint<8>;"
      "  unused = a * a;"  // dead: never loaded
      "  y = a + 1;"
      "}");
  auto pass = createDcePass();
  int changes = pass->run(fn);
  EXPECT_GT(changes, 0);
  verifyOrThrow(fn);
  EXPECT_EQ(countKind(fn, OpKind::Mul), 0);
}

TEST(OptDce, KeepsLiveStores) {
  Function fn = compileBdlOrThrow(
      "proc f(in a: uint<8>, out y: uint<8>) {"
      "  var t: uint<8>; t = a + 1; y = t;"
      "}");
  auto pass = createDcePass();
  pass->run(fn);
  EXPECT_EQ(countKind(fn, OpKind::Add), 1);
  Interpreter in(fn);
  EXPECT_EQ(in.run({{"a", 4}}).outputs.at("y"), 5u);
}

TEST(OptConstFold, FoldsConstantExpressions) {
  Function fn = compileBdlOrThrow(
      "proc f(out y: uint<16>) { y = 3 * 4 + 2; }");
  auto pm = PassManager::standardPipeline();
  pm.run(fn);
  EXPECT_EQ(countKind(fn, OpKind::Mul), 0);
  EXPECT_EQ(countKind(fn, OpKind::Add), 0);
  Interpreter in(fn);
  EXPECT_EQ(in.run({}).outputs.at("y"), 14u);
}

TEST(OptForward, ForwardsStoreToLoad) {
  Function fn = compileBdlOrThrow(
      "proc f(in a: uint<8>, out y: uint<8>) {"
      "  var t: uint<8>; t = a + 1; y = t + t;"
      "}");
  auto pm = PassManager::standardPipeline();
  pm.run(fn);
  // After forwarding + DCE the temp variable has no loads left.
  EXPECT_EQ(countKind(fn, OpKind::LoadVar), 0);
  Interpreter in(fn);
  EXPECT_EQ(in.run({{"a", 3}}).outputs.at("y"), 8u);
}

TEST(OptCse, MergesDuplicateExpressions) {
  Function fn = compileBdlOrThrow(
      "proc f(in a: uint<8>, in b: uint<8>, out y: uint<8>) {"
      "  y = (a * b) + (a * b);"
      "}");
  auto pm = PassManager::standardPipeline();
  pm.run(fn);
  EXPECT_EQ(countKind(fn, OpKind::Mul), 1);
  Interpreter in(fn);
  EXPECT_EQ(in.run({{"a", 3}, {"b", 5}}).outputs.at("y"), 30u);
}

TEST(OptCse, CommutativeOperandsUnify) {
  Function fn = compileBdlOrThrow(
      "proc f(in a: uint<8>, in b: uint<8>, out y: uint<8>) {"
      "  y = (a * b) + (b * a);"
      "}");
  auto pm = PassManager::standardPipeline();
  pm.run(fn);
  EXPECT_EQ(countKind(fn, OpKind::Mul), 1);
}

TEST(OptCse, StoreInvalidatesLoadCse) {
  Function fn = compileBdlOrThrow(
      "proc f(in a: uint<8>, out y: uint<8>) {"
      "  var t: uint<8>;"
      "  t = a; y = t;"
      "  t = t + 1; y = y + t;"
      "}");
  Function orig = fn.clone();
  auto pm = PassManager::standardPipeline();
  pm.run(fn);
  Interpreter i1(orig), i2(fn);
  for (std::uint64_t a : {0, 5, 255})
    EXPECT_EQ(i1.run({{"a", a}}).outputs.at("y"),
              i2.run({{"a", a}}).outputs.at("y"));
}

TEST(OptStrength, MulPowerOfTwoBecomesShift) {
  // The paper's "multiplication times 0.5 can be replaced by a right
  // shift"; in integer form, *8 becomes << 3.
  Function fn = compileBdlOrThrow(
      "proc f(in a: uint<16>, out y: uint<16>) { var e: uint<16>; e = 8;"
      "  y = a * e; }");
  auto pm = PassManager::standardPipeline();
  pm.run(fn);
  EXPECT_EQ(countKind(fn, OpKind::Mul), 0);
  EXPECT_EQ(countKind(fn, OpKind::ShlConst), 1);
  Interpreter in(fn);
  EXPECT_EQ(in.run({{"a", 5}}).outputs.at("y"), 40u);
}

TEST(OptStrength, AddOneBecomesIncrement) {
  // "The addition of 1 to I can be replaced by an increment operation."
  Function fn = compileBdlOrThrow(
      "proc f(in a: uint<8>, out y: uint<8>) { y = a + 1; }");
  auto pm = PassManager::standardPipeline();
  pm.run(fn);
  EXPECT_EQ(countKind(fn, OpKind::Add), 0);
  EXPECT_EQ(countKind(fn, OpKind::Inc), 1);
  Interpreter in(fn);
  EXPECT_EQ(in.run({{"a", 255}}).outputs.at("y"), 0u);
}

TEST(OptStrength, DivPowerOfTwoBecomesShift) {
  Function fn = compileBdlOrThrow(
      "proc f(in a: uint<16>, out y: uint<16>) { var d: uint<16>; d = 16;"
      "  y = a / d; }");
  auto pm = PassManager::standardPipeline();
  pm.run(fn);
  EXPECT_EQ(countKind(fn, OpKind::UDiv), 0);
  EXPECT_EQ(countKind(fn, OpKind::ShrConst), 1);
}

TEST(OptAlgebraic, IdentitiesCollapse) {
  Function fn = compileBdlOrThrow(
      "proc f(in a: uint<8>, out y: uint<8>) {"
      "  var z: uint<8>; z = 0;"
      "  y = ((a + z) ^ (a ^ a)) | z;"
      "}");
  auto pm = PassManager::standardPipeline();
  pm.run(fn);
  EXPECT_EQ(countKind(fn, OpKind::Add), 0);
  EXPECT_EQ(countKind(fn, OpKind::Xor), 0);
  EXPECT_EQ(countKind(fn, OpKind::Or), 0);
  Interpreter in(fn);
  EXPECT_EQ(in.run({{"a", 77}}).outputs.at("y"), 77u);
}

TEST(OptUnroll, FullyUnrollsCountedLoop) {
  Function fn = compileBdlOrThrow(
      "proc f(in a: uint<8>, out y: uint<8>) {"
      "  var i: uint<4>; var acc: uint<8>;"
      "  i = 0; acc = 0;"
      "  do { acc = acc + a; i = i + 1; } until (i == 3);"
      "  y = acc;"
      "}");
  std::size_t blocksBefore = fn.numBlocks();
  auto pm = PassManager::aggressivePipeline();
  pm.run(fn);
  EXPECT_GT(fn.numBlocks(), blocksBefore);  // two extra iteration blocks
  // No back edge remains.
  EXPECT_TRUE(findLoops(fn).empty());
  Interpreter in(fn);
  EXPECT_EQ(in.run({{"a", 7}}).outputs.at("y"), 21u);
}

TEST(OptUnroll, SkipsDataDependentLoop) {
  Function fn = compileBdlOrThrow(
      "proc f(in n: uint<8>, out y: uint<8>) {"
      "  var i: uint<8>; i = 0;"
      "  do { i = i + 1; } until (i == n);"
      "  y = i;"
      "}");
  auto pass = createUnrollPass();
  EXPECT_EQ(pass->run(fn), 0);
  EXPECT_EQ(findLoops(fn).size(), 1u);
}

TEST(OptUnroll, SkipsLoopLongerThanLimit) {
  Function fn = compileBdlOrThrow(
      "proc f(out y: uint<8>) {"
      "  var i: uint<8>; i = 0;"
      "  do { i = i + 1; } until (i == 200);"
      "  y = i;"
      "}");
  auto pass = createUnrollPass(/*maxTrip=*/64);
  EXPECT_EQ(pass->run(fn), 0);
}

TEST(OptUnroll, SqrtLoopUnrollsToFourIterations) {
  // Paper Fig. 2: "Loop unrolling can also be done in this case since the
  // number of iterations is fixed and small."
  Function fn = compileBdlOrThrow(R"(
    proc sqrt(in x: uint<16>, out y: uint<16>) {
      var i: uint<2>;
      y = trunc<16>((zext<32>(x) * 3641) >> 12) + 910;
      i = 0;
      do {
        y = (y + trunc<16>((zext<32>(x) << 12) / zext<32>(y))) >> 1;
        i = i + 1;
      } until (i == 0);
    }
  )");
  Function orig = fn.clone();
  auto pm = PassManager::aggressivePipeline();
  pm.run(fn);
  EXPECT_TRUE(findLoops(fn).empty());
  // 4 iterations -> body + 3 copies.
  Interpreter i1(orig), i2(fn);
  for (std::uint64_t x : {256u, 1024u, 2048u, 4095u}) {
    EXPECT_EQ(i1.run({{"x", x}}).outputs.at("y"),
              i2.run({{"x", x}}).outputs.at("y"))
        << "x=" << x;
  }
}

TEST(OptTreeHeight, BalancesAddChain) {
  Function fn = compileBdlOrThrow(
      "proc f(in a: uint<8>, in b: uint<8>, in c: uint<8>, in d: uint<8>,"
      "       out y: uint<8>) { y = a + b + c + d; }");
  Function orig = fn.clone();
  // Critical length before: 3 chained adds.
  {
    BlockDeps deps(orig, orig.block(orig.entry()));
    EXPECT_EQ(computeLevels(deps).criticalLength, 3);
  }
  auto pm = PassManager::aggressivePipeline();
  pm.run(fn);
  {
    BlockDeps deps(fn, fn.block(fn.entry()));
    EXPECT_EQ(computeLevels(deps).criticalLength, 2);
  }
  Interpreter i1(orig), i2(fn);
  EXPECT_EQ(i1.run({{"a", 1}, {"b", 2}, {"c", 3}, {"d", 250}}).outputs.at("y"),
            i2.run({{"a", 1}, {"b", 2}, {"c", 3}, {"d", 250}}).outputs.at("y"));
}

// ----------------------------------------------- behavior preservation sweep

struct Corpus {
  const char* name;
  const char* src;
  std::vector<const char*> inputs;
};

const Corpus kCorpus[] = {
    {"mac",
     "proc f(in a: uint<8>, in b: uint<8>, in c: uint<8>, out y: uint<8>) {"
     "  y = a * b + c; }",
     {"a", "b", "c"}},
    {"signed_mix",
     "proc f(in a: int<8>, in b: int<8>, out y: int<16>) {"
     "  y = sext<16>(a) * sext<16>(b) - sext<16>(a / b); }",
     {"a", "b"}},
    {"branches",
     "proc f(in a: uint<8>, in b: uint<8>, out y: uint<8>) {"
     "  if (a > b) { y = a - b; } else if (a == b) { y = 0; }"
     "  else { y = b - a; } }",
     {"a", "b"}},
    {"loopy",
     "proc f(in a: uint<8>, out y: uint<16>) {"
     "  var i: uint<4>; var acc: uint<16>;"
     "  i = 0; acc = 1;"
     "  do { acc = acc + (acc << 1) + zext<16>(a); i = i + 1; }"
     "  until (i == 5);"
     "  y = acc; }",
     {"a"}},
    {"shifty",
     "proc f(in a: uint<16>, in s: uint<4>, out y: uint<16>) {"
     "  y = ((a << 2) >> s) ^ (a % 8) + (a & 15); }",
     {"a", "s"}},
    {"chain",
     "proc f(in a: uint<8>, in b: uint<8>, in c: uint<8>, in d: uint<8>,"
     "       in e: uint<8>, out y: uint<8>) {"
     "  y = a + b + c + d + e + 1 + 2 + 3; }",
     {"a", "b", "c", "d", "e"}},
    {"ternaries",
     "proc f(in a: uint<8>, in b: uint<8>, out y: uint<8>) {"
     "  y = (a < b ? a : b) + (a > 128 ? b : 7); }",
     {"a", "b"}},
};

class OptEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(OptEquivalence, PipelinePreservesBehavior) {
  const Corpus& c = kCorpus[GetParam()];
  Function orig = compileBdlOrThrow(c.src);
  Function std1 = orig.clone();
  Function aggr = orig.clone();
  PassManager::standardPipeline().run(std1);
  PassManager::aggressivePipeline().run(aggr);

  Interpreter iOrig(orig), iStd(std1), iAggr(aggr);
  // Deterministic pseudo-random input sweep.
  std::uint64_t seed = 0x9E3779B97F4A7C15ull;
  for (int trial = 0; trial < 40; ++trial) {
    std::map<std::string, std::uint64_t> in;
    for (const char* port : c.inputs) {
      seed = seed * 6364136223846793005ull + 1442695040888963407ull;
      std::uint64_t v = (seed >> 33);
      if (trial == 0) v = 0;                   // all-zero corner
      if (trial == 1) v = ~0ull;               // all-ones corner
      if (trial == 2) v = 1;
      in[port] = v;
    }
    // Avoid division-related UB paths only through defined semantics: the
    // IR defines x/0, so no masking needed.
    auto r0 = iOrig.run(in);
    auto r1 = iStd.run(in);
    auto r2 = iAggr.run(in);
    ASSERT_TRUE(r0.finished && r1.finished && r2.finished);
    EXPECT_EQ(r0.outputs, r1.outputs) << c.name << " trial " << trial;
    EXPECT_EQ(r0.outputs, r2.outputs) << c.name << " trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, OptEquivalence,
    ::testing::Range(0, static_cast<int>(std::size(kCorpus))),
    [](const ::testing::TestParamInfo<int>& info) {
      return kCorpus[info.param].name;
    });

TEST(OptPipeline, ReportsStats) {
  Function fn = compileBdlOrThrow(
      "proc f(in a: uint<8>, out y: uint<8>) { y = a * 4 + 0 + 1; }");
  auto pm = PassManager::standardPipeline();
  auto stats = pm.run(fn);
  int total = 0;
  for (const auto& s : stats) total += s.changes;
  EXPECT_GT(total, 0);
}

TEST(OptPipeline, IdempotentOnCleanCode) {
  Function fn = compileBdlOrThrow(
      "proc f(in a: uint<8>, in b: uint<8>, out y: uint<8>) { y = a * b; }");
  auto pm = PassManager::standardPipeline();
  pm.run(fn);
  std::size_t ops = fn.numOps();
  auto pm2 = PassManager::standardPipeline();
  pm2.run(fn);
  EXPECT_EQ(fn.numOps(), ops);
}

}  // namespace
}  // namespace mphls
