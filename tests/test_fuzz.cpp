// Tests for the differential fuzzing subsystem (src/fuzz/): generator
// determinism, the co-simulation oracle's ability to catch real
// divergences (injected miscompiles, corrupted schedules), delta-debugging
// reduction, corpus save/replay, campaign determinism across job counts,
// and the checked-in regression corpus under tests/fixtures/fuzz/.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "fuzz/bdl_gen.h"
#include "fuzz/campaign.h"
#include "fuzz/corpus.h"
#include "fuzz/diff_runner.h"
#include "fuzz/reduce.h"
#include "lang/frontend.h"
#include "opt/pass.h"
#include "sched/freedom.h"
#include "sched/sched_util.h"

namespace mphls {
namespace {

namespace fs = std::filesystem;

std::size_t lineCount(const std::string& s) {
  std::size_t n = 0;
  for (char c : s)
    if (c == '\n') ++n;
  return n;
}

/// Unique scratch directory, removed on scope exit.
struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag)
      : path(fs::temp_directory_path() /
             ("mphls-fuzz-test-" + tag + "-" +
              std::to_string(::getpid()))) {
    fs::remove_all(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

fuzz::DiffOptions quickDiff() {
  fuzz::DiffOptions d;
  d.points = fuzz::FuzzMatrix::quick().points();
  return d;
}

// --------------------------------------------------------------- generator

TEST(FuzzGen, DeterministicBySeed) {
  for (std::uint64_t seed : {1ull, 7ull, 123456789ull}) {
    fuzz::GenProgram a = fuzz::generateProgram(seed);
    fuzz::GenProgram b = fuzz::generateProgram(seed);
    EXPECT_EQ(a.render(), b.render()) << "seed " << seed;
    EXPECT_EQ(a.inputNames(), b.inputNames());
  }
  EXPECT_NE(fuzz::generateProgram(1).render(),
            fuzz::generateProgram(2).render());
}

TEST(FuzzGen, GeneratedProgramsCompile) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    fuzz::GenProgram p = fuzz::generateProgram(seed);
    DiagEngine diags;
    auto fn = compileBdl(p.render(), diags);
    EXPECT_TRUE(fn.has_value())
        << "seed " << seed << ": " << diags.summary() << "\n" << p.render();
  }
}

TEST(FuzzGen, RandomInputsPatternsAndDeterminism) {
  const std::vector<std::string> names = {"a", "b"};
  auto zeros = fuzz::randomInputs(names, 9, 0);
  auto ones = fuzz::randomInputs(names, 9, 1);
  for (const auto& n : names) {
    EXPECT_EQ(zeros.at(n), 0u);
    EXPECT_EQ(ones.at(n), ~0ull);
  }
  EXPECT_EQ(fuzz::randomInputs(names, 9, 2), fuzz::randomInputs(names, 9, 2));
  EXPECT_NE(fuzz::randomInputs(names, 9, 2), fuzz::randomInputs(names, 9, 3));
}

TEST(FuzzGen, SplitmixSeedsDecorrelate) {
  // Neighboring seeds must give unrelated streams (the old multiplicative
  // xorshift seeding made seed and seed+1 share most of their stream).
  fuzz::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_EQ(same, 0);
}

// ------------------------------------------------------------------ oracle

TEST(FuzzDiff, CleanProgramsPassTheQuickMatrix) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    fuzz::GenProgram p = fuzz::generateProgram(seed);
    fuzz::ProgramVerdict v = fuzz::runSource(p.render(), seed, quickDiff());
    EXPECT_TRUE(v.ok()) << "seed " << seed << ": "
                        << (v.failures.empty() ? "compile"
                                               : v.failures.front().detail);
  }
}

TEST(FuzzDiff, DetectsInjectedMiscompile) {
  const std::string source =
      "proc fuzz(in a: uint<8>, in b: uint<8>, out o: uint<16>) {\n"
      "  o = (a * b);\n"
      "}\n";
  fuzz::DiffOptions d = quickDiff();
  d.inject = fuzz::InjectedBug::MulToAdd;
  fuzz::ProgramVerdict v = fuzz::runSource(source, 1, d);
  ASSERT_FALSE(v.ok());
  bool sawMismatch = false;
  for (const auto& f : v.failures) sawMismatch |= f.kind == "mismatch";
  EXPECT_TRUE(sawMismatch);
  // The same program is clean without the injection.
  EXPECT_TRUE(fuzz::runSource(source, 1, quickDiff()).ok());
}

TEST(FuzzDiff, DetectsCorruptedSchedule) {
  // Collapse every multi-op block onto control step 0: the RTL simulator
  // follows the controller, so only the checkDesign gate can see this.
  const std::string source =
      "proc fuzz(in a: uint<8>, in b: uint<8>, out o: uint<8>) {\n"
      "  o = (((a * b) + a) ^ (b - a));\n"
      "}\n";
  fuzz::DiffOptions d = quickDiff();
  d.postSynthesis = [](SynthesisResult& r, const fuzz::MatrixPoint&) {
    for (BlockSchedule& bs : r.design.sched.blocks) {
      if (bs.step.size() < 2) continue;
      for (int& s : bs.step) s = 0;
      bs.numSteps = 1;
    }
  };
  fuzz::ProgramVerdict v = fuzz::runSource(source, 1, d);
  ASSERT_FALSE(v.ok());
  for (const auto& f : v.failures) EXPECT_EQ(f.kind, "check") << f.detail;
}

// ----------------------------------------------------------------- reducer

TEST(FuzzReduce, ShrinksInjectedMiscompileWitness) {
  // Find a generated program whose product survives optimization, then
  // shrink it against the real differential predicate the campaign uses.
  fuzz::DiffOptions d = quickDiff();
  d.inject = fuzz::InjectedBug::MulToAdd;
  d.stopAtFirstFailure = true;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    fuzz::GenProgram p = fuzz::generateProgram(seed);
    fuzz::ProgramVerdict v = fuzz::runSource(p.render(), seed, d);
    bool mismatch = false;
    for (const auto& f : v.failures) mismatch |= f.kind == "mismatch";
    if (!mismatch) continue;

    fuzz::DiffOptions rd = d;
    rd.points = v.failingPoints();
    auto stillFails = [&](const fuzz::GenProgram& cand) {
      fuzz::ProgramVerdict cv = fuzz::runSource(cand.render(), seed, rd);
      if (!cv.compiled) return false;
      for (const auto& f : cv.failures)
        if (f.kind == "mismatch") return true;
      return false;
    };
    fuzz::ReduceStats stats;
    fuzz::GenProgram reduced = fuzz::reduceProgram(p, stillFails, &stats);
    EXPECT_TRUE(stillFails(reduced));
    EXPECT_LE(stats.finalStmts, stats.initialStmts);
    EXPECT_LT(lineCount(reduced.render()), 15u) << reduced.render();
    // A minimal multiply-miscompile witness must still multiply.
    EXPECT_NE(reduced.render().find('*'), std::string::npos);
    return;
  }
  FAIL() << "no seed in 1..20 produced a surviving multiply";
}

TEST(FuzzReduce, ReturnsInputUnchangedWhenPredicateNeverHolds) {
  fuzz::GenProgram p = fuzz::generateProgram(5);
  fuzz::ReduceStats stats;
  fuzz::GenProgram r = fuzz::reduceProgram(
      p, [](const fuzz::GenProgram&) { return false; }, &stats);
  EXPECT_EQ(r.render(), p.render());
  EXPECT_EQ(stats.accepted, 0);
}

TEST(FuzzReduce, ConvergesOnStructuralPredicate) {
  // Pure structural predicate (keeps any program still containing a
  // division): the reducer should strip everything else.
  fuzz::GenProgram p;
  std::uint64_t seed = 1;
  for (;; ++seed) {
    ASSERT_LE(seed, 50u) << "no generated program with a division";
    p = fuzz::generateProgram(seed);
    if (p.render().find('/') != std::string::npos) break;
  }
  auto hasDiv = [](const fuzz::GenProgram& cand) {
    return cand.render().find('/') != std::string::npos;
  };
  fuzz::ReduceStats stats;
  fuzz::GenProgram r = fuzz::reduceProgram(p, hasDiv, &stats);
  EXPECT_TRUE(hasDiv(r));
  EXPECT_LT(r.render().size(), p.render().size());
  EXPECT_LE(r.stmtCount(), 3u) << r.render();
}

// ------------------------------------------------------------------ corpus

TEST(FuzzCorpus, EntryRoundTrip) {
  fuzz::CorpusEntry e;
  e.name = "seed-000042";
  e.seed = 42;
  e.kind = "mismatch";
  e.point = "sched=list fu=greedy-local";
  e.note = "first line\nsecond line";
  const std::string program = "proc fuzz(out o: uint<4>) {\n  o = 1;\n}\n";
  const std::string text = fuzz::renderEntry(e, program);
  fuzz::CorpusEntry back = fuzz::parseEntry(text, e.name);
  EXPECT_EQ(back.seed, 42u);
  EXPECT_EQ(back.kind, "mismatch");
  EXPECT_EQ(back.point, e.point);
  EXPECT_EQ(back.note, "first line second line");  // flattened
  EXPECT_EQ(back.source, text);  // header comments stay part of the unit
  EXPECT_NE(back.source.find(program), std::string::npos);
}

TEST(FuzzCorpus, SaveLoadReplayRoundTrip) {
  TempDir tmp("corpus");
  for (std::uint64_t seed : {2ull, 1ull}) {
    fuzz::CorpusEntry e;
    e.name = "seed-" + std::to_string(seed);
    e.seed = seed;
    e.kind = "fixture";
    ASSERT_TRUE(fuzz::saveEntry(tmp.path.string(), e,
                                fuzz::generateProgram(seed).render()));
  }
  auto entries = fuzz::loadCorpus(tmp.path.string());
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].seed, 1u);  // sorted by filename
  EXPECT_EQ(entries[1].seed, 2u);
  fuzz::ReplayResult r = fuzz::replayCorpus(tmp.path.string(), quickDiff());
  EXPECT_EQ(r.entries, 2);
  EXPECT_TRUE(r.clean());
}

// ---------------------------------------------------------------- campaign

TEST(FuzzCampaign, DeterministicAcrossJobCounts) {
  fuzz::CampaignOptions c;
  c.seeds = 6;
  c.diff = quickDiff();
  c.diff.inject = fuzz::InjectedBug::MulToAdd;  // force some failures
  c.jobs = 1;
  fuzz::CampaignResult serial = fuzz::runCampaign(c);
  c.jobs = 4;
  fuzz::CampaignResult parallel = fuzz::runCampaign(c);

  EXPECT_EQ(serial.failedPrograms, parallel.failedPrograms);
  EXPECT_EQ(serial.mismatches, parallel.mismatches);
  EXPECT_EQ(serial.pointsRun, parallel.pointsRun);
  EXPECT_EQ(serial.simulations, parallel.simulations);
  ASSERT_EQ(serial.failures.size(), parallel.failures.size());
  EXPECT_GE(serial.failures.size(), 1u);
  for (std::size_t i = 0; i < serial.failures.size(); ++i) {
    EXPECT_EQ(serial.failures[i].verdict.seed,
              parallel.failures[i].verdict.seed);
    EXPECT_EQ(serial.failures[i].source, parallel.failures[i].source);
    EXPECT_EQ(serial.failures[i].verdict.failures.front().detail,
              parallel.failures[i].verdict.failures.front().detail);
  }
}

TEST(FuzzCampaign, ReportCarriesTheCampaignShape) {
  fuzz::CampaignOptions c;
  c.seeds = 3;
  c.diff = quickDiff();
  fuzz::CampaignResult r = fuzz::runCampaign(c);
  EXPECT_TRUE(r.clean());
  JsonValue j = fuzz::campaignReport(c, r, "quick");
  const std::string s = j.dump();
  EXPECT_NE(s.find("\"benchmark\": \"fuzz_campaign\""), std::string::npos)
      << s;
  EXPECT_NE(s.find("\"matrix\": \"quick\""), std::string::npos);
  EXPECT_NE(s.find("\"failing_programs\": 0"), std::string::npos);
}

// ------------------------------------------------------ regression corpus

TEST(FuzzRegress, FixtureCorpusPassesTheQuickMatrix) {
  const std::string dir = std::string(MPHLS_FIXTURE_DIR) + "/fuzz";
  auto entries = fuzz::loadCorpus(dir);
  ASSERT_GE(entries.size(), 5u) << dir;
  fuzz::ReplayResult r = fuzz::replayCorpus(dir, quickDiff());
  for (const auto& o : r.outcomes)
    EXPECT_TRUE(o.verdict.ok())
        << o.name << ": "
        << (o.verdict.failures.empty() ? "compile"
                                       : o.verdict.failures.front().detail);
  EXPECT_TRUE(r.clean());
}

TEST(FuzzRegress, FreedomSchedulerConvergesUnderTightCaps) {
  // tests/fixtures/fuzz/freedom-stretch.bdl used to blow the freedom
  // scheduler's convergence check: once an op's successors were placed,
  // growing the horizon never widened its range. The fix inserts a control
  // step (shifting placed ops), so tight FU caps must now always converge.
  auto entries = fuzz::loadCorpus(std::string(MPHLS_FIXTURE_DIR) + "/fuzz");
  const fuzz::CorpusEntry* stretch = nullptr;
  for (const auto& e : entries)
    if (e.name == "freedom-stretch") stretch = &e;
  ASSERT_NE(stretch, nullptr);

  Function fn = compileBdlOrThrow(stretch->source);
  optimize(fn);
  for (int cap : {1, 2}) {
    auto limits = ResourceLimits::universalSet(cap);
    for (const auto& blk : fn.blocks()) {
      if (blk.ops.empty()) continue;
      BlockDeps deps(fn, blk);
      auto res = freedomSchedule(deps, limits);
      EXPECT_EQ(validateBlockSchedule(deps, res.schedule, limits), "")
          << blk.name << " cap=" << cap;
    }
  }
}

TEST(FuzzRegress, SelfStoreWiringDoesNotCycleTheDependenceGraph) {
  // 10k-campaign find (seed 1350): algebraic folding turned `0 ^ v2` into
  // the bare load *after* forwarding had already collapsed a reload, so
  // the standard pipeline produced either a store of the load's own value
  // or a free-wiring chain crossing a store of its root variable. Both
  // shapes made BlockDeps' use-before-overwrite edge contradict the
  // store-order chain and topoOrder() threw "dependence graph has a
  // cycle". The wiringWouldOutliveStore guard (refused rewrites) plus the
  // store-load-back exemption in deps.cpp keep every block acyclic.
  auto entries = fuzz::loadCorpus(std::string(MPHLS_FIXTURE_DIR) + "/fuzz");
  int covered = 0;
  for (const auto& e : entries) {
    if (e.name != "dep-cycle-self-xor" && e.name != "dep-cycle-wiring-chain" &&
        e.name != "self-store-then-overwrite")
      continue;
    ++covered;
    Function fn = compileBdlOrThrow(e.source);
    optimize(fn);
    for (const auto& blk : fn.blocks()) {
      if (blk.ops.empty()) continue;
      BlockDeps deps(fn, blk);
      EXPECT_NO_THROW((void)deps.topoOrder()) << e.name << " " << blk.name;
    }
  }
  EXPECT_EQ(covered, 3);

  // The write-back exemption must not *drop* the constraint: in
  // self-store-then-overwrite, `out0 = v0` reads v0's initial value and a
  // later `v0 = 350` overwrites it — every matrix point has to agree with
  // the behavioral model (the first fix let the RTL write 94 instead of 0).
  for (const auto& e : entries) {
    if (e.name != "self-store-then-overwrite") continue;
    fuzz::ProgramVerdict v = fuzz::runSource(e.source, e.seed, quickDiff());
    EXPECT_TRUE(v.ok()) << (v.failures.empty()
                                ? "compile"
                                : v.failures.front().detail);
  }
}

TEST(FuzzRegress, NarrowingSurvivesMixedWidthEqualityRefinement) {
  // 10k-campaign find (seed 9859): one narrowing round left `in0 != out0`
  // comparing a w12 zext against a w24 load; the equality refinement on
  // the else edge then met the w12 signed range into the w24 variable
  // fact (capping it at 2047) and the next round narrowed the load to 11
  // bits — behavioral 4095 vs RTL 2047. The same-width gate on meetS in
  // analysis/dataflow.cpp makes the narrow=1 points co-simulate clean.
  auto entries = fuzz::loadCorpus(std::string(MPHLS_FIXTURE_DIR) + "/fuzz");
  const fuzz::CorpusEntry* entry = nullptr;
  for (const auto& e : entries)
    if (e.name == "narrow-eq-refine") entry = &e;
  ASSERT_NE(entry, nullptr);

  fuzz::DiffOptions d;
  fuzz::MatrixPoint p;
  p.narrow = true;
  d.points = {p};
  fuzz::ProgramVerdict v = fuzz::runSource(entry->source, entry->seed, d);
  EXPECT_TRUE(v.ok()) << (v.failures.empty()
                              ? "compile"
                              : v.failures.front().detail);
}

}  // namespace
}  // namespace mphls
