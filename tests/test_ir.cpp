// Unit tests for the CDFG IR: construction, dependence graphs, analyses,
// the verifier, the interpreter and DOT output.
#include <gtest/gtest.h>

#include "ir/analysis.h"
#include "ir/cdfg.h"
#include "ir/deps.h"
#include "ir/dot.h"
#include "ir/interp.h"
#include "ir/verify.h"

namespace mphls {
namespace {

/// Straight-line a*b + c written directly in IR.
Function buildMac() {
  Function fn("mac");
  PortId a = fn.addInput("a", 16);
  PortId b = fn.addInput("b", 16);
  PortId c = fn.addInput("c", 16);
  PortId y = fn.addOutput("y", 16);
  BlockId blk = fn.addBlock("entry");
  ValueId va = fn.emitRead(blk, a);
  ValueId vb = fn.emitRead(blk, b);
  ValueId vc = fn.emitRead(blk, c);
  ValueId prod = fn.emitBinary(blk, OpKind::Mul, va, vb);
  ValueId sum = fn.emitBinary(blk, OpKind::Add, prod, vc);
  fn.emitWrite(blk, y, sum);
  fn.setReturn(blk);
  return fn;
}

TEST(Cdfg, BuildAndVerify) {
  Function fn = buildMac();
  EXPECT_EQ(verifyFunction(fn), "");
  EXPECT_EQ(fn.numBlocks(), 1u);
  EXPECT_EQ(fn.numOps(), 6u);
  EXPECT_EQ(fn.numRealOps(), 6u);  // reads, mul, add, write are all non-free
}

TEST(Cdfg, FindByName) {
  Function fn = buildMac();
  EXPECT_TRUE(fn.findPort("a").valid());
  EXPECT_TRUE(fn.findPort("y").valid());
  EXPECT_FALSE(fn.findPort("nope").valid());
  EXPECT_TRUE(fn.findBlock("entry").valid());
}

TEST(Cdfg, DumpContainsOps) {
  Function fn = buildMac();
  std::string d = fn.dump();
  EXPECT_NE(d.find("mul"), std::string::npos);
  EXPECT_NE(d.find("add"), std::string::npos);
  EXPECT_NE(d.find("write y"), std::string::npos);
}

TEST(Cdfg, RemoveOpAndCompact) {
  Function fn("f");
  BlockId blk = fn.addBlock("entry");
  ValueId c1 = fn.emitConst(blk, 1, 8);
  ValueId c2 = fn.emitConst(blk, 2, 8);
  ValueId s = fn.emitBinary(blk, OpKind::Add, c1, c2);
  VarId v = fn.addVar("v", 8);
  fn.emitStore(blk, v, s);
  // Kill an unused extra op.
  ValueId dead = fn.emitConst(blk, 9, 8);
  OpId deadOp = fn.value(dead).def;
  fn.setReturn(blk);
  fn.removeOp(deadOp);
  fn.compact();
  EXPECT_EQ(verifyFunction(fn), "");
  EXPECT_EQ(fn.numOps(), 4u);
}

TEST(Cdfg, ReplaceAllUses) {
  Function fn("f");
  BlockId blk = fn.addBlock("entry");
  ValueId c1 = fn.emitConst(blk, 1, 8);
  ValueId c2 = fn.emitConst(blk, 2, 8);
  ValueId s = fn.emitBinary(blk, OpKind::Add, c1, c1);
  VarId v = fn.addVar("v", 8);
  fn.emitStore(blk, v, s);
  fn.setReturn(blk);
  fn.replaceAllUses(c1, c2);
  const Op& add = fn.defOf(s);
  EXPECT_EQ(add.args[0], c2);
  EXPECT_EQ(add.args[1], c2);
}

TEST(Deps, ValueEdges) {
  Function fn = buildMac();
  BlockDeps deps(fn, fn.block(fn.entry()));
  // mul (index 3) depends on reads 0 and 1; add (4) on mul and read 2.
  EXPECT_EQ(deps.preds(3).size(), 2u);
  EXPECT_EQ(deps.preds(4).size(), 2u);
  EXPECT_TRUE(deps.reaches(0, 5));
  EXPECT_FALSE(deps.reaches(5, 0));
}

TEST(Deps, VarOrderingEdges) {
  // store v; load v; store v  =>  RAW then WAR and WAW.
  Function fn("f");
  BlockId blk = fn.addBlock("entry");
  VarId v = fn.addVar("v", 8);
  ValueId c = fn.emitConst(blk, 1, 8);
  fn.emitStore(blk, v, c);                        // 1
  ValueId ld = fn.emitLoad(blk, v);               // 2
  ValueId inc = fn.emitUnary(blk, OpKind::Inc, ld);  // 3
  fn.emitStore(blk, v, inc);                      // 4
  fn.setReturn(blk);
  BlockDeps deps(fn, fn.block(blk));
  int raw = 0, war = 0, waw = 0;
  for (const auto& e : deps.edges()) {
    if (e.kind == DepKind::VarRaw) ++raw;
    if (e.kind == DepKind::VarWar) ++war;
    if (e.kind == DepKind::VarWaw) ++waw;
  }
  EXPECT_EQ(raw, 1);  // store(1) -> load(2)
  EXPECT_EQ(war, 1);  // load(2) -> store(4)
  EXPECT_EQ(waw, 1);  // store(1) -> store(4)
}

TEST(Deps, TopoOrderIsValid) {
  Function fn = buildMac();
  BlockDeps deps(fn, fn.block(fn.entry()));
  auto order = deps.topoOrder();
  ASSERT_EQ(order.size(), deps.numOps());
  std::vector<int> posOf(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) posOf[order[i]] = (int)i;
  for (const auto& e : deps.edges()) EXPECT_LT(posOf[e.from], posOf[e.to]);
}

TEST(Analysis, LevelsOfMac) {
  Function fn = buildMac();
  BlockDeps deps(fn, fn.block(fn.entry()));
  LevelInfo li = computeLevels(deps);
  // Critical path: mul -> add = 2 steps.
  EXPECT_EQ(li.criticalLength, 2);
  // mul at step 0, add at step 1.
  EXPECT_EQ(li.asap[3], 0);
  EXPECT_EQ(li.asap[4], 1);
  // mul has no slack; the reads feeding only add have slack 1.
  EXPECT_EQ(li.mobility[3], 0);
}

TEST(Analysis, AlapStretchesToConstraint) {
  Function fn = buildMac();
  BlockDeps deps(fn, fn.block(fn.entry()));
  LevelInfo li = computeLevels(deps, 4);
  // With a 4-step budget the mul can slide to step 2 (add at 3).
  EXPECT_EQ(li.alap[3], 2);
  EXPECT_EQ(li.alap[4], 3);
  EXPECT_EQ(li.mobility[3], 2);
}

TEST(Analysis, ReversePostOrderStartsAtEntry) {
  Function fn("f");
  BlockId b0 = fn.addBlock("entry");
  BlockId b1 = fn.addBlock("body");
  BlockId b2 = fn.addBlock("exit");
  fn.setJump(b0, b1);
  ValueId c = fn.emitConst(b1, 1, 1);
  fn.setBranch(b1, c, b2, b1);
  fn.setReturn(b2);
  auto rpo = reversePostOrder(fn);
  ASSERT_EQ(rpo.size(), 3u);
  EXPECT_EQ(rpo[0], b0);
}

TEST(Analysis, FindLoopsDetectsSelfLoop) {
  Function fn("f");
  BlockId b0 = fn.addBlock("entry");
  BlockId b1 = fn.addBlock("body");
  BlockId b2 = fn.addBlock("exit");
  fn.setJump(b0, b1);
  ValueId c = fn.emitConst(b1, 1, 1);
  fn.setBranch(b1, c, b2, b1);
  fn.setReturn(b2);
  auto loops = findLoops(fn);
  ASSERT_EQ(loops.size(), 1u);
  EXPECT_EQ(loops[0].header, b1);
  EXPECT_EQ(loops[0].latch, b1);
  EXPECT_EQ(loops[0].blocks.size(), 1u);
}

TEST(Analysis, VarLiveness) {
  // v defined in entry, used in body -> live-in at body, live-out of entry.
  Function fn("f");
  BlockId b0 = fn.addBlock("entry");
  BlockId b1 = fn.addBlock("body");
  VarId v = fn.addVar("v", 8);
  ValueId c = fn.emitConst(b0, 5, 8);
  fn.emitStore(b0, v, c);
  fn.setJump(b0, b1);
  ValueId ld = fn.emitLoad(b1, v);
  PortId y = fn.addOutput("y", 8);
  fn.emitWrite(b1, y, ld);
  fn.setReturn(b1);
  auto lv = computeVarLiveness(fn);
  EXPECT_TRUE(lv.liveOut[b0.index()][v.index()]);
  EXPECT_TRUE(lv.liveIn[b1.index()][v.index()]);
  EXPECT_FALSE(lv.liveIn[b0.index()][v.index()]);
}

TEST(Verify, CatchesUseBeforeDef) {
  Function fn("bad");
  BlockId blk = fn.addBlock("entry");
  ValueId c = fn.emitConst(blk, 1, 8);
  fn.setReturn(blk);
  // Manufacture a bogus op that uses a value from nowhere by reordering.
  Function fn2("bad2");
  BlockId b2 = fn2.addBlock("entry");
  ValueId c2 = fn2.emitConst(b2, 1, 8);
  ValueId s = fn2.emitBinary(b2, OpKind::Add, c2, c2);
  fn2.setReturn(b2);
  // Swap op order so add precedes const.
  std::swap(fn2.block(b2).ops[0], fn2.block(b2).ops[1]);
  EXPECT_NE(verifyFunction(fn2), "");
  (void)c;
  (void)s;
}

TEST(Verify, CatchesArityMismatch) {
  Function fn = buildMac();
  ASSERT_EQ(verifyFunction(fn), "");
  // Find the Add op and drop one operand behind the builder's back.
  for (OpId oid : fn.block(fn.findBlock("entry")).ops) {
    if (fn.op(oid).kind == OpKind::Add) {
      fn.op(oid).args.pop_back();
      break;
    }
  }
  std::string msg = verifyFunction(fn);
  EXPECT_NE(msg, "");
  EXPECT_NE(msg.find("args"), std::string::npos);
}

TEST(Verify, CatchesDanglingUseOfDeletedOp) {
  Function fn("f");
  BlockId blk = fn.addBlock("entry");
  ValueId c1 = fn.emitConst(blk, 1, 8);
  ValueId c2 = fn.emitConst(blk, 2, 8);
  ValueId s = fn.emitBinary(blk, OpKind::Add, c1, c2);
  VarId v = fn.addVar("v", 8);
  fn.emitStore(blk, v, s);
  fn.setReturn(blk);
  ASSERT_EQ(verifyFunction(fn), "");
  // A buggy DCE removes the producer but leaves the user in place.
  fn.removeOp(fn.value(c2).def);
  std::string msg = verifyFunction(fn);
  EXPECT_NE(msg, "");
  EXPECT_NE(msg.find("deleted op"), std::string::npos);
}

TEST(Verify, CatchesDetachedLiveOp) {
  Function fn("f");
  BlockId blk = fn.addBlock("entry");
  ValueId c1 = fn.emitConst(blk, 1, 8);
  VarId v = fn.addVar("v", 8);
  fn.emitStore(blk, v, c1);
  fn.setReturn(blk);
  ASSERT_EQ(verifyFunction(fn), "");
  // Detach the store from the block without marking it dead.
  OpId store = fn.block(blk).ops.back();
  fn.block(blk).ops.pop_back();
  ASSERT_FALSE(fn.op(store).dead);
  std::string msg = verifyFunction(fn);
  EXPECT_NE(msg, "");
  EXPECT_NE(msg.find("not attached"), std::string::npos);
}

TEST(Verify, CatchesBadBranchCond) {
  Function fn("bad");
  BlockId b0 = fn.addBlock("entry");
  BlockId b1 = fn.addBlock("other");
  ValueId wide = fn.emitConst(b0, 3, 8);
  fn.block(b0).term =
      Terminator{Terminator::Kind::Branch, b1, b0, wide};  // 8-bit cond
  fn.setReturn(b1);
  EXPECT_NE(verifyFunction(fn), "");
}

TEST(Interp, EvaluatesMac) {
  Function fn = buildMac();
  Interpreter in(fn);
  auto res = in.run({{"a", 6}, {"b", 7}, {"c", 100}});
  ASSERT_TRUE(res.finished);
  EXPECT_EQ(res.outputs.at("y"), 142u);
}

TEST(Interp, TruncatesToWidth) {
  Function fn("f");
  PortId a = fn.addInput("a", 8);
  PortId y = fn.addOutput("y", 8);
  BlockId blk = fn.addBlock("entry");
  ValueId va = fn.emitRead(blk, a);
  ValueId sum = fn.emitBinary(blk, OpKind::Add, va, va);
  fn.emitWrite(blk, y, sum);
  fn.setReturn(blk);
  Interpreter in(fn);
  auto res = in.run({{"a", 200}});
  EXPECT_EQ(res.outputs.at("y"), (200u + 200u) & 0xFF);
}

TEST(Interp, LoopExecutesAndTraces) {
  // counter: i = 0; do { i = i + 1 } until (i == 4); y = i
  Function fn("count");
  PortId y = fn.addOutput("y", 8);
  VarId i = fn.addVar("i", 8);
  BlockId b0 = fn.addBlock("entry");
  BlockId b1 = fn.addBlock("body");
  BlockId b2 = fn.addBlock("exit");
  ValueId z = fn.emitConst(b0, 0, 8);
  fn.emitStore(b0, i, z);
  fn.setJump(b0, b1);
  ValueId ld = fn.emitLoad(b1, i);
  ValueId inc = fn.emitUnary(b1, OpKind::Inc, ld);
  fn.emitStore(b1, i, inc);
  ValueId ld2 = fn.emitLoad(b1, i);
  ValueId four = fn.emitConst(b1, 4, 8);
  ValueId eq = fn.emitBinary(b1, OpKind::Eq, ld2, four);
  fn.setBranch(b1, eq, b2, b1);
  ValueId out = fn.emitLoad(b2, i);
  fn.emitWrite(b2, y, out);
  fn.setReturn(b2);

  Interpreter in(fn);
  auto res = in.run({});
  ASSERT_TRUE(res.finished);
  EXPECT_EQ(res.outputs.at("y"), 4u);
  // entry + 4 body iterations + exit
  EXPECT_EQ(res.blockTrace.size(), 6u);
}

TEST(Interp, StepLimitStopsRunaway) {
  Function fn("forever");
  BlockId b0 = fn.addBlock("entry");
  ValueId t = fn.emitConst(b0, 1, 1);
  fn.setBranch(b0, t, b0, b0);
  Interpreter in(fn);
  auto res = in.run({}, 100);
  EXPECT_FALSE(res.finished);
}

TEST(Interp, EvalPureArithSuite) {
  using V = std::vector<std::uint64_t>;
  using W = std::vector<int>;
  EXPECT_EQ(Interpreter::evalPure(OpKind::Sub, 8, 0, V{3, 5}, W{8, 8}),
            0xFEu);
  EXPECT_EQ(Interpreter::evalPure(OpKind::Div, 8, 0, V{0xF8, 2}, W{8, 8}),
            0xFCu);  // -8 / 2 = -4
  EXPECT_EQ(Interpreter::evalPure(OpKind::UDiv, 8, 0, V{0xF8, 2}, W{8, 8}),
            0x7Cu);  // 248 / 2 = 124
  EXPECT_EQ(Interpreter::evalPure(OpKind::Lt, 1, 0, V{0xFF, 1}, W{8, 8}), 1u);
  EXPECT_EQ(Interpreter::evalPure(OpKind::ULt, 1, 0, V{0xFF, 1}, W{8, 8}), 0u);
  EXPECT_EQ(Interpreter::evalPure(OpKind::SarConst, 8, 2, V{0x80}, W{8}),
            0xE0u);
  EXPECT_EQ(Interpreter::evalPure(OpKind::ShrConst, 8, 2, V{0x80}, W{8}),
            0x20u);
  EXPECT_EQ(Interpreter::evalPure(OpKind::Select, 8, 0, V{1, 7, 9},
                                  W{1, 8, 8}),
            7u);
  EXPECT_EQ(Interpreter::evalPure(OpKind::Select, 8, 0, V{0, 7, 9},
                                  W{1, 8, 8}),
            9u);
  // Division by zero is all-ones (hardware-friendly), remainder zero.
  EXPECT_EQ(Interpreter::evalPure(OpKind::UDiv, 8, 0, V{5, 0}, W{8, 8}),
            0xFFu);
  EXPECT_EQ(Interpreter::evalPure(OpKind::UMod, 8, 0, V{5, 0}, W{8, 8}), 0u);
}

TEST(Dot, DataFlowAndControlFlow) {
  Function fn = buildMac();
  std::string dfg = dataFlowDot(fn, fn.entry());
  EXPECT_NE(dfg.find("digraph"), std::string::npos);
  EXPECT_NE(dfg.find("mul"), std::string::npos);
  std::string cfg = controlFlowDot(fn);
  EXPECT_NE(cfg.find("entry"), std::string::npos);
}

}  // namespace
}  // namespace mphls
