// Observability-layer tests: span tracer (nesting, null-sink, JSON
// export), metrics registry, VCD writer golden-parse, the simulation
// recorder (waveform final values vs simulator end state, FSM coverage
// vs an independent recount of the controller graph), single-source
// stage timing, and ThreadPool worker track naming.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "common/thread_pool.h"
#include "core/designs.h"
#include "core/synthesizer.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/vcd.h"
#include "rtl/microsim.h"
#include "rtl/rtlsim.h"
#include "rtl/sim_trace.h"

namespace mphls {
namespace {

// ------------------------------------------------------------- tracer

/// Drops events recorded by other cases so each test sees its own spans.
struct TracerReset {
  TracerReset() {
    obs::Tracer::global().disable();
    obs::Tracer::global().clear();
  }
  ~TracerReset() {
    obs::Tracer::global().disable();
    obs::Tracer::global().clear();
  }
};

TEST(Tracer, SpansNestAndBalancePerTrack) {
  TracerReset guard;
  auto& tr = obs::Tracer::global();
  tr.enable();
  {
    obs::TraceSpan outer("outer");
    { obs::TraceSpan inner("inner", "detail"); }
    tr.instant("ping");
  }
  tr.disable();

  int myTid = tr.currentTid();
  bool found = false;
  for (const auto& track : tr.snapshot()) {
    int depth = 0;
    double lastTs = -1;
    for (const auto& e : track.events) {
      EXPECT_GE(e.tsMicros, lastTs) << "timestamps regress on tid "
                                    << track.tid;
      lastTs = e.tsMicros;
      if (e.phase == 'B') ++depth;
      if (e.phase == 'E') --depth;
      EXPECT_GE(depth, 0) << "E without matching B on tid " << track.tid;
    }
    EXPECT_EQ(depth, 0) << "unbalanced spans on tid " << track.tid;
    if (track.tid == myTid) {
      found = true;
      ASSERT_EQ(track.events.size(), 5u);  // B B E i E
      EXPECT_EQ(track.events[0].name, "outer");
      EXPECT_EQ(track.events[1].name, "inner");
      EXPECT_EQ(track.events[1].arg, "detail");
      EXPECT_EQ(track.events[3].phase, 'i');
      EXPECT_EQ(track.events[3].name, "ping");
      EXPECT_EQ(track.events[4].phase, 'E');
    }
  }
  EXPECT_TRUE(found);
}

TEST(Tracer, DisabledSpanRecordsNothing) {
  TracerReset guard;
  auto& tr = obs::Tracer::global();
  ASSERT_FALSE(tr.enabled());
  const std::size_t before = tr.eventCount();
  {
    obs::TraceSpan s("invisible");
    tr.instant("also invisible");
  }
  EXPECT_EQ(tr.eventCount(), before);
}

TEST(Tracer, DisabledSpanStillAccumulatesSeconds) {
  TracerReset guard;
  double acc = 0;
  { obs::TraceSpan s("timed", &acc); }
  EXPECT_GE(acc, 0.0);
  const std::size_t events = obs::Tracer::global().eventCount();
  EXPECT_EQ(events, 0u);
}

TEST(Tracer, ChromeTraceJsonSchema) {
  TracerReset guard;
  auto& tr = obs::Tracer::global();
  tr.setThreadName("test-main");
  tr.enable();
  { obs::TraceSpan s("stage.\"quoted\"", "a\nb"); }
  tr.disable();

  const std::string json = tr.chromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  // Metadata event names the track.
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("test-main"), std::string::npos);
  // Escaping: the quote and newline must not appear raw.
  EXPECT_NE(json.find("stage.\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(json.find("a\\nb"), std::string::npos);
  // One B and one E for the span.
  EXPECT_NE(json.find("\"ph\": \"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"E\""), std::string::npos);
}

TEST(Tracer, AppendJsonStringEscapes) {
  std::string out;
  obs::appendJsonString(out, "a\"b\\c\n\t\x01");
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\n\\t\\u0001\"");
}

TEST(Tracer, AppendJsonStringControlChars) {
  // Every byte below 0x20 must leave the output as an escape, never raw.
  for (int c = 1; c < 0x20; ++c) {
    std::string out;
    obs::appendJsonString(out, std::string(1, static_cast<char>(c)));
    for (char b : out) EXPECT_GE(static_cast<unsigned char>(b), 0x20u)
        << "raw control byte " << c << " in " << out;
  }
  std::string nul;
  obs::appendJsonString(nul, std::string_view("a\0b", 3));
  EXPECT_EQ(nul, "\"a\\u0000b\"");
}

TEST(Tracer, AppendJsonStringValidUtf8PassesThrough) {
  std::string out;
  obs::appendJsonString(out, "caf\xc3\xa9 \xe2\x82\xac \xf0\x9f\x99\x82");
  EXPECT_EQ(out, "\"caf\xc3\xa9 \xe2\x82\xac \xf0\x9f\x99\x82\"");
}

TEST(Tracer, AppendJsonStringInvalidUtf8BecomesReplacement) {
  const char* kRepl = "\xef\xbf\xbd";  // U+FFFD
  struct Case {
    std::string in;
    int replacements;  ///< how many U+FFFD the output must contain
  } cases[] = {
      {"\xff", 1},                  // invalid lead byte
      {"\xc3", 1},                  // truncated 2-byte sequence
      {"\xc3(", 1},                 // bad continuation ('(' survives)
      {"\xe2\x82", 2},              // truncated 3-byte sequence
      {"\xc0\xaf", 2},              // overlong encoding of '/'
      {"\xed\xa0\x80", 3},          // UTF-16 surrogate half
      {"\xf4\x90\x80\x80", 4},      // above U+10FFFF
      {"ok\x80も", 1},              // stray continuation amid valid text
  };
  for (const auto& c : cases) {
    std::string out;
    obs::appendJsonString(out, c.in);
    int found = 0;
    for (std::size_t p = out.find(kRepl); p != std::string::npos;
         p = out.find(kRepl, p + 3))
      ++found;
    EXPECT_EQ(found, c.replacements) << "input bytes: " << c.in.size();
    // The result must itself be valid UTF-8/JSON: re-escaping an already
    // escaped string must not introduce more replacements.
    std::string again;
    obs::appendJsonString(again, out);
    EXPECT_EQ(again.find(kRepl) != std::string::npos,
              out.find(kRepl) != std::string::npos);
  }
  // '(' after the bad lead byte is kept as data.
  std::string out;
  obs::appendJsonString(out, "\xc3(");
  EXPECT_NE(out.find('('), std::string::npos);
}

// ------------------------------------------------------------ metrics

TEST(Metrics, CountersGaugesHistograms) {
  auto& mr = obs::MetricsRegistry::global();
  auto& c = mr.counter("test.obs.counter");
  const std::uint64_t c0 = c.value();
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), c0 + 5);

  mr.gauge("test.obs.gauge").set(2.5);
  EXPECT_DOUBLE_EQ(mr.gauge("test.obs.gauge").value(), 2.5);

  auto& h = mr.histogram("test.obs.hist");
  h.reset();
  h.observe(1.0);
  h.observe(3.0);
  const auto s = h.stats();
  EXPECT_EQ(s.count, 2u);
  EXPECT_DOUBLE_EQ(s.sum, 4.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);

  // Handles are stable: the same name returns the same instrument.
  EXPECT_EQ(&c, &mr.counter("test.obs.counter"));
}

TEST(Metrics, SnapshotSortedAndJsonWellFormed) {
  auto& mr = obs::MetricsRegistry::global();
  mr.counter("test.obs.z").add();
  mr.counter("test.obs.a").add();
  const auto snap = mr.snapshot();
  for (std::size_t i = 1; i < snap.counters.size(); ++i)
    EXPECT_LT(snap.counters[i - 1].first, snap.counters[i].first);

  const std::string json = mr.toJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"test.obs.a\""), std::string::npos);
}

// ---------------------------------------------------------------- vcd

TEST(Vcd, GoldenRender) {
  obs::VcdWriter vcd("dut");
  const int clk = vcd.addWire("clk", 1);
  const int bus = vcd.addWire("bus", 4);
  const int ghost = vcd.addWire("ghost", 8);  // never written -> x
  (void)ghost;
  vcd.change(clk, 0, 1);
  vcd.change(bus, 0, 0);
  vcd.change(clk, 1, 0);
  vcd.change(bus, 2, 10);
  vcd.change(bus, 3, 10);  // unchanged -> deduplicated
  EXPECT_EQ(vcd.changeCount(), 4u);

  const std::string out = vcd.render();
  EXPECT_NE(out.find("$timescale 1ns $end"), std::string::npos);
  EXPECT_NE(out.find("$scope module dut $end"), std::string::npos);
  EXPECT_NE(out.find("$var wire 1 ! clk $end"), std::string::npos);
  EXPECT_NE(out.find("$var wire 4 \" bus [3:0] $end"), std::string::npos);
  EXPECT_NE(out.find("$enddefinitions $end"), std::string::npos);
  EXPECT_NE(out.find("$dumpvars"), std::string::npos);
  EXPECT_NE(out.find("bx #"), std::string::npos);  // ghost dumps as x
  EXPECT_NE(out.find("b1010 \""), std::string::npos);
  // t=3 produced no block (its only change was deduplicated).
  EXPECT_EQ(out.find("#3"), std::string::npos);
}

/// Parse a rendered VCD: tracks every wire's last value and checks time
/// monotonicity. Returns name -> final value (unwritten wires absent).
std::map<std::string, std::uint64_t> vcdFinalValues(const std::string& vcd) {
  std::map<std::string, std::string> nameOfCode;
  std::map<std::string, std::uint64_t> last;
  std::istringstream in(vcd);
  std::string line;
  long t = -1;
  bool inDefs = true;
  while (std::getline(in, line)) {
    if (inDefs) {
      if (line.rfind("$var wire ", 0) == 0) {
        // $var wire W CODE NAME [range] $end
        std::istringstream ls(line);
        std::string var, wire, code, name;
        int width = 0;
        ls >> var >> wire >> width >> code >> name;
        EXPECT_GE(width, 1);
        EXPECT_LE(width, 64);
        nameOfCode[code] = name;
      }
      if (line == "$enddefinitions $end") inDefs = false;
      continue;
    }
    if (!line.empty() && line[0] == '#') {
      const long nt = std::stol(line.substr(1));
      EXPECT_GE(nt, t) << "VCD time regresses";
      t = nt;
    } else if (!line.empty() && (line[0] == '0' || line[0] == '1')) {
      const std::string code = line.substr(1);
      EXPECT_TRUE(nameOfCode.count(code)) << "undeclared code " << code;
      if (!nameOfCode.count(code)) continue;
      last[nameOfCode[code]] = line[0] - '0';
    } else if (!line.empty() && line[0] == 'b' && line != "bx") {
      const auto sp = line.find(' ');
      EXPECT_NE(sp, std::string::npos);
      if (sp == std::string::npos) continue;
      const std::string bits = line.substr(1, sp - 1);
      const std::string code = line.substr(sp + 1);
      EXPECT_TRUE(nameOfCode.count(code)) << "undeclared code " << code;
      if (!nameOfCode.count(code)) continue;
      if (bits == "x") {
        last.erase(nameOfCode[code]);
        continue;
      }
      std::uint64_t v = 0;
      for (char b : bits) v = (v << 1) | (std::uint64_t)(b - '0');
      last[nameOfCode[code]] = v;
    }
  }
  return last;
}

// --------------------------------------------------- simulation traces

TEST(SimTrace, VcdFinalValuesMatchSimulatorEndState) {
  Synthesizer synth(SynthesisOptions{});
  SynthesisResult r = synth.synthesizeSource(designs::gcdSource());
  const RtlDesign& d = r.design;

  std::map<std::string, std::uint64_t> inputs = {{"a0", 54}, {"b0", 24}};
  SimTraceRecorder rec(d);
  rec.begin(inputs);
  RtlSimulator sim(d);
  RtlExecResult res = sim.run(inputs, 1000000, rec.observer());
  rec.finish();
  ASSERT_TRUE(res.finished);

  const auto last = vcdFinalValues(rec.vcd().render());
  // Every register wire's final VCD value equals the simulator end state.
  ASSERT_EQ((int)rec.finalRegs().size(), d.regs.numRegs);
  for (int i = 0; i < d.regs.numRegs; ++i) {
    // Sequential append: GCC 12 -Wrestrict -O3 false positive (see vcd.cpp).
    std::string name = "r";
    name += std::to_string(i);
    ASSERT_TRUE(last.count(name)) << name << " missing from VCD";
    EXPECT_EQ(last.at(name), rec.finalRegs()[(std::size_t)i]) << name;
  }
  // Output ports match the simulator's reported outputs.
  for (const auto& [port, value] : res.outputs) {
    const std::string name = "port_" + port;
    ASSERT_TRUE(last.count(name)) << name << " missing from VCD";
    EXPECT_EQ(last.at(name), value) << name;
  }
  // The clock ends low (finish() writes the closing falling edge).
  ASSERT_TRUE(last.count("clk"));
  EXPECT_EQ(last.at("clk"), 0u);
  EXPECT_EQ(rec.cycles(), res.cycles);
}

TEST(SimTrace, FsmCoverageMatchesControllerRecount) {
  for (const char* src : {designs::gcdSource(), designs::sqrtSource()}) {
    Synthesizer synth(SynthesisOptions{});
    SynthesisResult r = synth.synthesizeSource(src);
    const RtlDesign& d = r.design;

    // Independent recount of the controller graph, straight from the
    // state table: per-state outgoing edges (none for halt, both arms
    // for conditionals, deduplicated).
    std::set<std::pair<std::uint64_t, std::uint64_t>> edges;
    for (const CtrlState& s : d.ctrl.states) {
      if (s.halt) continue;
      if (s.conditional) {
        edges.insert({(std::uint64_t)s.id.index(),
                      (std::uint64_t)s.nextTaken.index()});
        edges.insert({(std::uint64_t)s.id.index(),
                      (std::uint64_t)s.nextNot.index()});
      } else {
        edges.insert(
            {(std::uint64_t)s.id.index(), (std::uint64_t)s.next.index()});
      }
    }

    std::map<std::string, std::uint64_t> inputs;
    for (const auto& p : d.fn.ports())
      if (p.isInput) inputs[p.name] = 21;  // gcd(21,21); sqrt(21)
    SimTraceRecorder rec(d);
    rec.begin(inputs);
    RtlSimulator sim(d);
    auto res = sim.run(inputs, 1000000, rec.observer());
    rec.finish();
    ASSERT_TRUE(res.finished);

    const FsmCoverage cov = rec.coverage();
    EXPECT_EQ(cov.totalStates, (std::size_t)d.ctrl.numStates());
    EXPECT_EQ(cov.totalTransitions, edges.size());
    EXPECT_GE(cov.visitedStates, 1u);
    EXPECT_LE(cov.visitedStates, cov.totalStates);
    EXPECT_LE(cov.visitedTransitions, cov.totalTransitions);
    EXPECT_GT(cov.stateCoverage(), 0.0);
    EXPECT_LE(cov.stateCoverage(), 1.0);
  }
}

TEST(SimTrace, SqrtSingleRunReachesFullStateCoverage) {
  // The sqrt controller is a straight loop: one run with any input that
  // iterates visits every state — the acceptance bar for `mphls profile`.
  Synthesizer synth(SynthesisOptions{});
  SynthesisResult r = synth.synthesizeSource(designs::sqrtSource());
  const RtlDesign& d = r.design;

  std::map<std::string, std::uint64_t> inputs;
  for (const auto& p : d.fn.ports())
    if (p.isInput) inputs[p.name] = 64;
  SimTraceRecorder rec(d);
  rec.begin(inputs);
  RtlSimulator sim(d);
  auto res = sim.run(inputs, 1000000, rec.observer());
  rec.finish();
  ASSERT_TRUE(res.finished);

  const FsmCoverage cov = rec.coverage();
  EXPECT_DOUBLE_EQ(cov.stateCoverage(), 1.0);
  EXPECT_DOUBLE_EQ(cov.transitionCoverage(), 1.0);

  // FU utilization: one fraction per bound FU, all within [0, 1].
  const auto util = rec.fuUtilization();
  ASSERT_EQ((int)util.size(), d.binding.numFus());
  for (double u : util) {
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0);
  }
}

TEST(SimTrace, MicrosimObserverReportsEveryCycle) {
  Synthesizer synth(SynthesisOptions{});
  SynthesisResult r = synth.synthesizeSource(designs::gcdSource());

  std::map<std::string, std::uint64_t> inputs = {{"a0", 12}, {"b0", 20}};
  long observed = 0;
  std::uint64_t lastAddr = 0;
  MicrocodeSimulator micro(r.design, r.microHorizontal);
  RtlExecResult res = micro.run(inputs, 1000000, [&](const SimCycle& sc) {
    EXPECT_EQ(sc.cycle, observed);
    ++observed;
    lastAddr = sc.nextState;  // microcode address, not an FSM state id
  });
  ASSERT_TRUE(res.finished);
  EXPECT_EQ(observed, res.cycles);
  (void)lastAddr;
}

// ------------------------------------------- single-source stage timing

TEST(SimTrace, StageSpansAndStageTimesAgreeExactly) {
  TracerReset guard;
  obs::Tracer::global().enable();
  Synthesizer synth(SynthesisOptions{});
  SynthesisResult r = synth.synthesizeSource(designs::sqrtSource());
  obs::Tracer::global().disable();

  // Sum B->E durations per stage name across all tracks.
  std::map<std::string, double> spanSeconds;
  for (const auto& track : obs::Tracer::global().snapshot()) {
    std::vector<const obs::TraceEvent*> stack;
    for (const auto& e : track.events) {
      if (e.phase == 'B') stack.push_back(&e);
      else if (e.phase == 'E') {
        ASSERT_FALSE(stack.empty());
        ASSERT_EQ(stack.back()->name, e.name);
        spanSeconds[e.name] += (e.tsMicros - stack.back()->tsMicros) / 1e6;
        stack.pop_back();
      }
    }
    EXPECT_TRUE(stack.empty());
  }

  // The span *is* the timer: both numbers come from the same clock reads,
  // so the bench JSON and the trace can never disagree on a stage.
  const StageTimes& st = r.stages;
  EXPECT_DOUBLE_EQ(spanSeconds["stage.optimize"], st.optimize);
  EXPECT_DOUBLE_EQ(spanSeconds["stage.schedule"], st.schedule);
  EXPECT_DOUBLE_EQ(spanSeconds["stage.allocate"], st.allocate);
  EXPECT_DOUBLE_EQ(spanSeconds["stage.control"], st.control);
  EXPECT_DOUBLE_EQ(spanSeconds["stage.estimate"], st.estimate);
  EXPECT_DOUBLE_EQ(spanSeconds["stage.check"], st.check);
}

// -------------------------------------------------- worker track names

TEST(ThreadPoolObs, WorkersRegisterStableNamedTracks) {
  ThreadPool pool(2, "dse");
  EXPECT_EQ(pool.workerName(0), "dse-0");
  EXPECT_EQ(pool.workerName(1), "dse-1");

  std::vector<std::string> seen(4);
  parallelFor(&pool, seen.size(), [&](std::size_t i, int worker) {
    ASSERT_GE(worker, 0);
    ASSERT_LT(worker, 2);
    seen[i] = obs::Tracer::global().currentThreadName();
    EXPECT_EQ(seen[i], pool.workerName(worker));
    EXPECT_EQ(obs::Tracer::global().currentTid(),
              pool.workerTraceTid(worker));
  });
  for (const auto& name : seen) EXPECT_EQ(name.rfind("dse-", 0), 0u);
}

}  // namespace
}  // namespace mphls
