// Serve-layer battery: HTTP parser protocol conformance (malformed
// request lines, framing limits, partial and pipelined reads,
// keep-alive accounting), the JSON reader, service routing and input
// validation, golden byte-equality between daemon endpoint bodies and
// the shared command layer the offline CLI prints from, and a
// concurrency soak over a real socket (N loadgen clients x mixed
// endpoints, zero errors, warm cache, graceful drain).
//
// Every suite name starts with "Serve" so the TSan CI stage can run the
// whole battery with --gtest_filter='Serve*'.
#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "common/json_reader.h"
#include "core/commands.h"
#include "core/designs.h"
#include "core/frontend_cache.h"
#include "obs/metrics.h"
#include "serve/client.h"
#include "serve/http.h"
#include "serve/loadgen.h"
#include "serve/server.h"
#include "serve/service.h"

namespace mphls {
namespace {

using serve::HttpParser;
using serve::HttpRequest;
using Status = serve::HttpParser::Status;

// ------------------------------------------------------ http parser

TEST(ServeHttpParser, ParsesSimpleGet) {
  HttpParser p;
  p.feed("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
  HttpRequest r;
  ASSERT_EQ(p.next(r), Status::Ready);
  EXPECT_EQ(r.method, "GET");
  EXPECT_EQ(r.target, "/healthz");
  EXPECT_EQ(r.version, "HTTP/1.1");
  EXPECT_TRUE(r.keepAlive);
  EXPECT_TRUE(r.body.empty());
  ASSERT_NE(r.header("host"), nullptr);
  EXPECT_EQ(*r.header("host"), "x");
  EXPECT_EQ(p.next(r), Status::NeedMore);
}

TEST(ServeHttpParser, ParsesPostBodyByContentLength) {
  HttpParser p;
  p.feed("POST /synth HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello");
  HttpRequest r;
  ASSERT_EQ(p.next(r), Status::Ready);
  EXPECT_EQ(r.body, "hello");
  EXPECT_EQ(p.buffered(), 0u);
}

TEST(ServeHttpParser, ByteAtATimeFeedStillParses) {
  const std::string wire =
      "POST /lint HTTP/1.1\r\nContent-Length: 4\r\nX-A: b\r\n\r\nabcd";
  HttpParser p;
  HttpRequest r;
  for (std::size_t i = 0; i + 1 < wire.size(); ++i) {
    p.feed(std::string_view(&wire[i], 1));
    ASSERT_EQ(p.next(r), Status::NeedMore) << "at byte " << i;
  }
  p.feed(std::string_view(&wire[wire.size() - 1], 1));
  ASSERT_EQ(p.next(r), Status::Ready);
  EXPECT_EQ(r.body, "abcd");
}

TEST(ServeHttpParser, PipelinedRequestsComeOutInOrder) {
  HttpParser p;
  p.feed(
      "POST /a HTTP/1.1\r\nContent-Length: 2\r\n\r\nxy"
      "GET /b HTTP/1.1\r\n\r\n");
  HttpRequest r;
  ASSERT_EQ(p.next(r), Status::Ready);
  EXPECT_EQ(r.target, "/a");
  EXPECT_EQ(r.body, "xy");
  ASSERT_EQ(p.next(r), Status::Ready);
  EXPECT_EQ(r.target, "/b");
  EXPECT_EQ(p.next(r), Status::NeedMore);
}

TEST(ServeHttpParser, PartialBodyNeedsMoreThenCompletes) {
  HttpParser p;
  p.feed("POST /sim HTTP/1.1\r\nContent-Length: 10\r\n\r\n12345");
  HttpRequest r;
  ASSERT_EQ(p.next(r), Status::NeedMore);
  p.feed("67890");
  ASSERT_EQ(p.next(r), Status::Ready);
  EXPECT_EQ(r.body, "1234567890");
}

TEST(ServeHttpParser, MalformedRequestLinesAre400) {
  const char* bad[] = {
      "GARBAGE\r\n\r\n",                      // no spaces
      "GET /x\r\n\r\n",                       // one token short
      "GET /x HTTP/1.1 extra\r\n\r\n",        // too many tokens
      "GET nopath HTTP/1.1\r\n\r\n",          // target without leading /
      " GET /x HTTP/1.1\r\n\r\n",             // empty method
      "G@T /x HTTP/1.1\r\n\r\n",              // non-tchar method
      "GET /x HTTP/2.0\r\n\r\n",              // unsupported version
      "GET /x HTTP/1.1\r\nNoColonHere\r\n\r\n",  // malformed header
      "GET /x HTTP/1.1\r\n: novalue\r\n\r\n",    // empty header name
  };
  for (const char* wire : bad) {
    HttpParser p;
    p.feed(wire);
    HttpRequest r;
    ASSERT_EQ(p.next(r), Status::Error) << wire;
    EXPECT_EQ(p.errorCode(), 400) << wire;
    // Poisoned: further feeds stay in error.
    p.feed("GET /ok HTTP/1.1\r\n\r\n");
    EXPECT_EQ(p.next(r), Status::Error) << wire;
  }
}

TEST(ServeHttpParser, PostWithoutContentLengthIs411) {
  HttpParser p;
  p.feed("POST /synth HTTP/1.1\r\n\r\n");
  HttpRequest r;
  ASSERT_EQ(p.next(r), Status::Error);
  EXPECT_EQ(p.errorCode(), 411);
}

TEST(ServeHttpParser, NonNumericContentLengthIs400) {
  HttpParser p;
  p.feed("POST /synth HTTP/1.1\r\nContent-Length: 12x\r\n\r\n");
  HttpRequest r;
  ASSERT_EQ(p.next(r), Status::Error);
  EXPECT_EQ(p.errorCode(), 400);
}

TEST(ServeHttpParser, OversizedBodyIs413BeforeBodyArrives) {
  serve::HttpLimits limits;
  limits.maxBodyBytes = 64;
  HttpParser p(limits);
  p.feed("POST /synth HTTP/1.1\r\nContent-Length: 65\r\n\r\n");
  HttpRequest r;
  ASSERT_EQ(p.next(r), Status::Error);
  EXPECT_EQ(p.errorCode(), 413);

  // Absurd lengths must not overflow the digit accumulator.
  HttpParser p2(limits);
  p2.feed(
      "POST /synth HTTP/1.1\r\n"
      "Content-Length: 99999999999999999999999999\r\n\r\n");
  ASSERT_EQ(p2.next(r), Status::Error);
  EXPECT_EQ(p2.errorCode(), 413);
}

TEST(ServeHttpParser, RunawayHeaderSectionIs431) {
  serve::HttpLimits limits;
  limits.maxRequestLine = 128;
  limits.maxHeaderBytes = 128;
  HttpParser p(limits);
  std::string wire = "GET /x HTTP/1.1\r\n";
  for (int i = 0; i < 64; ++i) wire += "X-Pad: aaaaaaaaaaaaaaaa\r\n";
  wire += "\r\n";
  p.feed(wire);
  HttpRequest r;
  ASSERT_EQ(p.next(r), Status::Error);
  EXPECT_EQ(p.errorCode(), 431);
}

TEST(ServeHttpParser, ChunkedTransferEncodingIs501) {
  HttpParser p;
  p.feed("POST /synth HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
  HttpRequest r;
  ASSERT_EQ(p.next(r), Status::Error);
  EXPECT_EQ(p.errorCode(), 501);
}

TEST(ServeHttpParser, KeepAliveDefaultsPerVersion) {
  struct Case {
    const char* wire;
    bool keep;
  } cases[] = {
      {"GET / HTTP/1.1\r\n\r\n", true},
      {"GET / HTTP/1.1\r\nConnection: close\r\n\r\n", false},
      {"GET / HTTP/1.0\r\n\r\n", false},
      {"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n", true},
      {"GET / HTTP/1.1\r\nConnection: Close\r\n\r\n", false},  // case-insens.
  };
  for (const Case& c : cases) {
    HttpParser p;
    p.feed(c.wire);
    HttpRequest r;
    ASSERT_EQ(p.next(r), Status::Ready) << c.wire;
    EXPECT_EQ(r.keepAlive, c.keep) << c.wire;
  }
}

TEST(ServeHttpParser, ResponseRenderingFramesBody) {
  const std::string resp = serve::renderResponse(200, "{}\n", true);
  EXPECT_NE(resp.find("HTTP/1.1 200 OK\r\n"), std::string::npos);
  EXPECT_NE(resp.find("Content-Length: 3\r\n"), std::string::npos);
  EXPECT_NE(resp.find("Connection: keep-alive\r\n"), std::string::npos);
  EXPECT_EQ(resp.substr(resp.size() - 3), "{}\n");
  // Deterministic responses: no Date header ever.
  EXPECT_EQ(resp.find("Date:"), std::string::npos);
}

// ------------------------------------------------------ json reader

TEST(ServeJsonReader, ParsesScalarsAndNesting) {
  const auto doc = json::parse(
      "{\"a\": 1.5, \"b\": [true, null, \"x\\n\"], \"c\": {\"d\": -2e3}}");
  ASSERT_NE(doc, nullptr);
  EXPECT_DOUBLE_EQ(doc->getNumber("a"), 1.5);
  const json::Node* b = doc->get("b");
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(b->size(), 3u);
  EXPECT_TRUE(b->at(0)->boolean());
  EXPECT_TRUE(b->at(1)->isNull());
  EXPECT_EQ(b->at(2)->str(), "x\n");
  ASSERT_NE(doc->get("c"), nullptr);
  EXPECT_DOUBLE_EQ(doc->get("c")->getNumber("d"), -2000.0);
}

TEST(ServeJsonReader, DecodesSurrogatePairsToUtf8) {
  const auto doc = json::parse("\"\\ud83d\\ude00\"");  // U+1F600
  ASSERT_NE(doc, nullptr);
  EXPECT_EQ(doc->str(), "\xF0\x9F\x98\x80");
}

TEST(ServeJsonReader, RejectsMalformedDocuments) {
  const char* bad[] = {"",       "{",          "[1,]",    "{\"a\":}",
                       "01",     "1.",         "+1",      "\"\\x\"",
                       "tru",    "{\"a\":1,}", "[1] []",  "nulll",
                       "\"\\ud83d\"" /* lone surrogate */};
  for (const char* t : bad) {
    json::ParseError e;
    EXPECT_EQ(json::parseOrError(t, e), nullptr) << t;
    EXPECT_FALSE(json::valid(t)) << t;
  }
}

TEST(ServeJsonReader, EveryCommandBodyRoundTrips) {
  // The builder side (JsonValue) and the hand-rolled renderers must both
  // produce documents the reader accepts — the soak test depends on it.
  cmd::Request req;
  req.name = "sqrt";
  req.source = designs::sqrtSource();
  req.opts.resources = ResourceLimits::universalSet(2);
  EXPECT_TRUE(json::valid(cmd::synthJson(req).body));
  EXPECT_TRUE(json::valid(cmd::lintJson(req).body));
  EXPECT_TRUE(json::valid(cmd::analyzeJson(req, false).body));
  EXPECT_TRUE(json::valid(cmd::staJson(req, 10.0, 3).body));
  EXPECT_TRUE(json::valid(cmd::proveJson(req, false).body));
  EXPECT_TRUE(json::valid(cmd::simJson(req, {}).body));
}

// --------------------------------------------------------- service

HttpRequest makePost(const std::string& target, const std::string& body) {
  HttpRequest r;
  r.method = "POST";
  r.target = target;
  r.version = "HTTP/1.1";
  r.body = body;
  return r;
}

serve::Service makeService() {
  serve::ServiceOptions so;
  so.defaults.resources = ResourceLimits::universalSet(2);
  return serve::Service(so);
}

TEST(ServeService, UnknownRouteIs404WrongMethodIs405) {
  const serve::Service svc = makeService();
  EXPECT_EQ(svc.handle(makePost("/nope", "{}"), 1).status, 404);
  EXPECT_EQ(svc.handle(makePost("/healthz", "{}"), 1).status, 405);
  HttpRequest get;
  get.method = "GET";
  get.target = "/synth";
  get.version = "HTTP/1.1";
  EXPECT_EQ(svc.handle(get, 1).status, 405);
}

TEST(ServeService, MalformedBodiesAre400) {
  const serve::Service svc = makeService();
  // Broken JSON, non-object, missing source, unknown builtin, bad option
  // key, bad option value, non-object options, bad /sim inputs.
  const char* bad[] = {
      "{not json",
      "[1,2]",
      "{}",
      "{\"design\": \"no-such-design\"}",
      "{\"design\": \"sqrt\", \"options\": {\"optlevel\": \"none\"}}",
      "{\"design\": \"sqrt\", \"options\": {\"scheduler\": \"magic\"}}",
      "{\"design\": \"sqrt\", \"options\": [1]}",
      "{\"design\": \"sqrt\", \"inputs\": {\"x\": \"ten\"}}",
  };
  for (std::size_t i = 0; i < std::size(bad); ++i) {
    const char* target = i == 7 ? "/sim" : "/synth";
    const serve::ServiceResponse r = svc.handle(makePost(target, bad[i]), 1);
    EXPECT_EQ(r.status, 400) << bad[i] << " -> " << r.body;
    EXPECT_TRUE(json::valid(r.body)) << r.body;
  }
}

TEST(ServeService, CompileErrorsAre422) {
  const serve::Service svc = makeService();
  const serve::ServiceResponse r = svc.handle(
      makePost("/synth", "{\"source\": \"proc p { not bdl }\"}"), 1);
  EXPECT_EQ(r.status, 422);
  EXPECT_TRUE(json::valid(r.body));
  const auto doc = json::parse(r.body);
  ASSERT_NE(doc, nullptr);
  EXPECT_TRUE(doc->has("error"));
}

TEST(ServeService, HealthzAndMetricsRespond) {
  const serve::Service svc = makeService();
  HttpRequest get;
  get.method = "GET";
  get.version = "HTTP/1.1";
  get.target = "/healthz";
  EXPECT_EQ(svc.handle(get, 1).body, "{\"status\":\"ok\"}\n");
  get.target = "/metrics";
  const serve::ServiceResponse m = svc.handle(get, 1);
  EXPECT_EQ(m.status, 200);
  const auto doc = json::parse(m.body);
  ASSERT_NE(doc, nullptr);
  EXPECT_TRUE(doc->has("counters"));
  EXPECT_TRUE(doc->has("gauges"));
  EXPECT_TRUE(doc->has("histograms"));
  // The request instrumentation publishes through the shared registry.
  EXPECT_GT(svc.requestCount(), 0u);
}

// ---------------------------------------------- golden differential

// Daemon endpoint bodies must be byte-identical to the shared command
// layer the CLI's --format json paths print — the wiring can transform
// routes and status codes, never the payload. (ci.sh closes the loop by
// diffing daemon bytes against the actual `mphls ... --format json`
// process output over a real socket.)
TEST(ServeGolden, EndpointBodiesMatchCommandLayerForBuiltins) {
  const serve::Service svc = makeService();
  for (const auto& d : designs::all()) {
    cmd::Request req;
    req.name = d.name;
    req.source = d.source;
    req.opts.resources = ResourceLimits::universalSet(2);

    const std::string base =
        std::string("{\"design\": \"") + d.name + "\"";
    EXPECT_EQ(svc.handle(makePost("/synth", base + "}"), 1).body,
              cmd::synthJson(req).body)
        << d.name;
    EXPECT_EQ(svc.handle(makePost("/lint", base + "}"), 1).body,
              cmd::lintJson(req).body)
        << d.name;
    EXPECT_EQ(svc.handle(makePost("/analyze", base + "}"), 1).body,
              cmd::analyzeJson(req, false).body)
        << d.name;
    EXPECT_EQ(
        svc.handle(makePost("/sta", base + ", \"clock\": 10}"), 1).body,
        cmd::staJson(req, 10.0, 5).body)
        << d.name;
    EXPECT_EQ(svc.handle(makePost("/prove", base + "}"), 1).body,
              cmd::proveJson(req, false).body)
        << d.name;
    EXPECT_EQ(svc.handle(makePost("/sim", base + "}"), 1).body,
              cmd::simJson(req, {}).body)
        << d.name;
  }
}

// ----------------------------------------------------- socket layer

/// A live daemon on an ephemeral port for socket-level cases.
class ServeSocketTest : public ::testing::Test {
 protected:
  void SetUp() override {
    serve::ServerOptions so;
    so.port = 0;
    so.jobs = 2;
    so.service.defaults.resources = ResourceLimits::universalSet(2);
    server_ = std::make_unique<serve::Server>(so);
    std::string err;
    ASSERT_TRUE(server_->start(err)) << err;
    thread_ = std::thread([this] { server_->run(); });
  }

  void TearDown() override {
    server_->requestStop();
    thread_.join();
    server_.reset();
  }

  std::unique_ptr<serve::Server> server_;
  std::thread thread_;
};

TEST_F(ServeSocketTest, KeepAliveConnectionServesManyRequests) {
  serve::HttpClient client("127.0.0.1", server_->port());
  for (int i = 0; i < 3; ++i) {
    const serve::ClientResponse r = client.get("/healthz");
    ASSERT_TRUE(r.ok) << r.error;
    EXPECT_EQ(r.status, 200);
    EXPECT_EQ(r.body, "{\"status\":\"ok\"}\n");
    EXPECT_TRUE(client.connected());  // same connection each lap
  }
  const serve::ClientResponse p =
      client.post("/synth", "{\"design\": \"gcd\"}");
  ASSERT_TRUE(p.ok) << p.error;
  EXPECT_EQ(p.status, 200);
  EXPECT_TRUE(json::valid(p.body));
}

TEST_F(ServeSocketTest, MalformedWireRequestsGetPrecise4xx) {
  struct Case {
    const char* wire;
    int status;
  } cases[] = {
      {"BOGUS LINE\r\n\r\n", 400},
      {"POST /synth HTTP/1.1\r\n\r\n", 411},
      {"POST /synth HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n", 501},
      {"GET /definitely-not-a-route HTTP/1.1\r\n\r\n", 404},
      // Lying (short) Content-Length with half-closed write side: the
      // daemon must not hang; EOF before the promised body closes it.
  };
  for (const Case& c : cases) {
    serve::HttpClient client("127.0.0.1", server_->port());
    const serve::ClientResponse r = client.raw(c.wire);
    ASSERT_TRUE(r.ok) << c.wire << ": " << r.error;
    EXPECT_EQ(r.status, c.status) << c.wire;
    EXPECT_TRUE(json::valid(r.body)) << r.body;
  }
}

TEST_F(ServeSocketTest, LyingContentLengthClosesWithoutResponse) {
  serve::HttpClient client("127.0.0.1", server_->port());
  // Promises 100 bytes, delivers 5, then EOF: the request can never
  // complete, so the daemon just drops the session (no bytes owed).
  const serve::ClientResponse r =
      client.raw("POST /synth HTTP/1.1\r\nContent-Length: 100\r\n\r\nhello");
  EXPECT_FALSE(r.ok);
  // The daemon must still be alive for other clients.
  serve::HttpClient probe("127.0.0.1", server_->port());
  const serve::ClientResponse h = probe.get("/healthz");
  ASSERT_TRUE(h.ok) << h.error;
  EXPECT_EQ(h.status, 200);
}

TEST_F(ServeSocketTest, OversizedBodyIsRejectedWith413) {
  serve::HttpClient client("127.0.0.1", server_->port());
  const serve::ClientResponse r = client.raw(
      "POST /synth HTTP/1.1\r\nContent-Length: 104857600\r\n\r\n");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.status, 413);
}

TEST_F(ServeSocketTest, FragmentedRequestAcrossManyWritesParses) {
  // Raw socket writes split mid-request-line, mid-header and mid-body
  // still produce one well-formed response (incremental parser).
  serve::HttpClient client("127.0.0.1", server_->port());
  const serve::ClientResponse warm = client.get("/healthz");
  ASSERT_TRUE(warm.ok) << warm.error;
  const std::string body = "{\"design\": \"gcd\"}";
  const std::string wire =
      "POST /lint HTTP/1.1\r\nContent-Length: " +
      std::to_string(body.size()) + "\r\n\r\n" + body;
  // client.raw sends in one write; emulate fragmentation via many raw
  // sessions cut at every third byte using a plain blocking socket is
  // already covered in-parser; here assert the full wire works end to end.
  const serve::ClientResponse r = client.raw(wire);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.status, 200);
  EXPECT_TRUE(json::valid(r.body));
}

// ------------------------------------------------- concurrency soak

TEST(ServeSoak, ConcurrentMixedLoadZeroErrorsWarmCacheCleanDrain) {
  serve::ServerOptions so;
  so.port = 0;
  so.jobs = 4;
  so.service.defaults.resources = ResourceLimits::universalSet(2);
  serve::Server server(so);
  std::string err;
  ASSERT_TRUE(server.start(err)) << err;
  std::thread loop([&] { server.run(); });

  const std::size_t hitsBefore = FrontendCache::global().hits();
  serve::LoadgenOptions lo;
  lo.url = "http://127.0.0.1:" + std::to_string(server.port());
  lo.clients = 6;
  lo.requests = 60;
  lo.mix = "synth:lint:sim:sta:analyze";
  lo.seed = 42;
  lo.reportPath.clear();  // in-process: no report file
  const serve::LoadgenReport rep = serve::runLoadgen(lo);

  EXPECT_TRUE(rep.error.empty()) << rep.error;
  EXPECT_EQ(rep.transportErrors, 0);
  EXPECT_EQ(rep.httpErrors, 0);
  EXPECT_EQ(rep.invalidJson, 0);
  EXPECT_TRUE(rep.clean());
  // Identical sources hammered from many sessions: the shared frontend
  // cache must be doing the deduplication.
  EXPECT_GT(FrontendCache::global().hits(), hitsBefore);
  EXPECT_GT(rep.cacheHitRate, 0.0);

  // Graceful drain: stop returns and the loop thread joins.
  server.requestStop();
  loop.join();
}

TEST(ServeSoak, DeterministicSeedSendsSameSchedule) {
  // Same seed -> byte-identical planned request set. Observed through
  // the daemon's request counters: two identical campaigns move the
  // per-endpoint histogram counts by the same amount.
  serve::ServerOptions so;
  so.port = 0;
  so.jobs = 2;
  so.service.defaults.resources = ResourceLimits::universalSet(2);
  serve::Server server(so);
  std::string err;
  ASSERT_TRUE(server.start(err)) << err;
  std::thread loop([&] { server.run(); });

  auto endpointCounts = [&] {
    std::vector<std::uint64_t> counts;
    const auto snap = obs::MetricsRegistry::global().snapshot();
    for (const auto& [name, h] : snap.histograms)
      if (name.rfind("serve./", 0) == 0) counts.push_back(h.count);
    return counts;
  };

  serve::LoadgenOptions lo;
  lo.url = "http://127.0.0.1:" + std::to_string(server.port());
  lo.clients = 3;
  lo.requests = 24;
  lo.mix = "lint:sim";
  lo.seed = 99;
  lo.reportPath.clear();

  const auto before = endpointCounts();
  ASSERT_TRUE(serve::runLoadgen(lo).clean());
  const auto mid = endpointCounts();
  ASSERT_TRUE(serve::runLoadgen(lo).clean());
  const auto after = endpointCounts();

  ASSERT_EQ(mid.size(), after.size());
  ASSERT_GE(mid.size(), before.size());
  // Deltas of run 1 and run 2 match per endpoint.
  for (std::size_t i = 0; i < mid.size(); ++i) {
    const std::uint64_t b = i < before.size() ? before[i] : 0;
    EXPECT_EQ(mid[i] - b, after[i] - mid[i]) << "endpoint slot " << i;
  }

  server.requestStop();
  loop.join();
}

// ------------------------------------------------------- loadgen cli

TEST(ServeLoadgen, UrlParserAcceptsOnlyHttpHostPort) {
  std::string host;
  int port = 0;
  EXPECT_TRUE(serve::parseUrl("http://127.0.0.1:8080", host, port));
  EXPECT_EQ(host, "127.0.0.1");
  EXPECT_EQ(port, 8080);
  EXPECT_TRUE(serve::parseUrl("http://localhost:1/", host, port));
  EXPECT_FALSE(serve::parseUrl("https://127.0.0.1:8080", host, port));
  EXPECT_FALSE(serve::parseUrl("http://:8080", host, port));
  EXPECT_FALSE(serve::parseUrl("http://h:0", host, port));
  EXPECT_FALSE(serve::parseUrl("http://h:999999", host, port));
  EXPECT_FALSE(serve::parseUrl("http://h:80x", host, port));
  EXPECT_FALSE(serve::parseUrl("127.0.0.1:8080", host, port));
}

TEST(ServeLoadgen, RejectsUnknownMixAndUnreachableDaemon) {
  serve::LoadgenOptions lo;
  lo.url = "http://127.0.0.1:1";  // nothing listens on port 1
  lo.mix = "synth:teapot";
  lo.reportPath.clear();
  const serve::LoadgenReport bad = serve::runLoadgen(lo);
  EXPECT_FALSE(bad.error.empty());

  lo.mix = "synth";
  const serve::LoadgenReport unreachable = serve::runLoadgen(lo);
  EXPECT_FALSE(unreachable.error.empty());
}

}  // namespace
}  // namespace mphls
