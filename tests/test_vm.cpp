// Bytecode-VM tests: differential bit-identity against the tree-walking
// interpreters (the oracle), width-corner arithmetic, per-cycle observer
// equivalence (VCD byte-identity), compile caching, and the cross-checking
// SimEngine modes.
#include <gtest/gtest.h>

#include <sstream>

#include "common/bitutil.h"
#include "core/designs.h"
#include "core/synthesizer.h"
#include "fuzz/bdl_gen.h"
#include "ir/interp.h"
#include "lang/frontend.h"
#include "obs/metrics.h"
#include "rtl/rtlsim.h"
#include "rtl/sim_trace.h"
#include "vm/sim_engine.h"
#include "vm/vm.h"

namespace mphls {
namespace {

void expectExecEqual(const ExecResult& want, const ExecResult& got,
                     const std::string& ctx) {
  EXPECT_EQ(want.finished, got.finished) << ctx;
  EXPECT_EQ(want.outputs, got.outputs) << ctx;
  EXPECT_EQ(want.opsExecuted, got.opsExecuted) << ctx;
  ASSERT_EQ(want.blockTrace.size(), got.blockTrace.size()) << ctx;
  for (std::size_t i = 0; i < want.blockTrace.size(); ++i)
    ASSERT_EQ(want.blockTrace[i], got.blockTrace[i]) << ctx << " block " << i;
}

/// Flattened per-cycle observation, for comparing observer streams.
struct CycleLog {
  long cycle;
  std::uint64_t state, nextState;
  std::vector<std::uint64_t> regs, outs;
  std::vector<bool> fuActive;

  friend bool operator==(const CycleLog& a, const CycleLog& b) {
    return a.cycle == b.cycle && a.state == b.state &&
           a.nextState == b.nextState && a.regs == b.regs &&
           a.outs == b.outs && a.fuActive == b.fuActive;
  }
};

SimObserver logObserver(std::vector<CycleLog>& log) {
  return [&log](const SimCycle& sc) {
    log.push_back({sc.cycle, sc.state, sc.nextState, *sc.regs, *sc.outs,
                   *sc.fuActive});
  };
}

// ------------------------------------------------- behavioral differential

TEST(VmBehav, DifferentialSweepRandomPrograms) {
  for (std::uint64_t seed = 1; seed <= 40; ++seed) {
    fuzz::GenProgram prog = fuzz::generateProgram(seed);
    std::string source = prog.render();
    Function fn = compileBdlOrThrow(source);
    Interpreter interp(fn);
    vm::BehavProgram p = vm::compileBehavioral(fn);
    vm::BehavScratch scratch;
    for (int trial = 0; trial < 4; ++trial) {
      auto inputs = fuzz::randomInputs(prog.inputNames(), seed, trial);
      ExecResult want = interp.run(inputs);
      ExecResult got = vm::runBehavProgram(p, scratch, inputs);
      std::ostringstream ctx;
      ctx << "seed " << seed << " trial " << trial;
      expectExecEqual(want, got, ctx.str());
    }
  }
}

TEST(VmBehav, BlockBudgetMatchesInterpreter) {
  // An infinite loop: the VM must stop at the same block count with
  // finished=false, empty outputs and an identical (truncated) trace.
  Function fn("spin");
  PortId out = fn.addOutput("o", 8);
  BlockId entry = fn.addBlock("entry");
  BlockId loop = fn.addBlock("loop");
  fn.setEntry(entry);
  ValueId one = fn.emitConst(entry, 1, 8);
  fn.emitWrite(entry, out, one);
  fn.setJump(entry, loop);
  fn.setJump(loop, loop);

  Interpreter interp(fn);
  vm::BehavProgram p = vm::compileBehavioral(fn);
  vm::BehavScratch scratch;
  for (long budget : {1L, 7L, 100L}) {
    ExecResult want = interp.run({}, budget);
    ExecResult got = vm::runBehavProgram(p, scratch, {}, budget);
    expectExecEqual(want, got, "budget " + std::to_string(budget));
    EXPECT_FALSE(got.finished);
    EXPECT_TRUE(got.outputs.empty());
  }
}

// ------------------------------------------------------------ width corners

/// One-op function: o = a <op> b at the given widths.
Function binaryFn(OpKind k, int wa, int wb, int wr) {
  Function fn("corner");
  PortId pa = fn.addInput("a", wa);
  PortId pb = fn.addInput("b", wb);
  PortId po = fn.addOutput("o", wr);
  BlockId blk = fn.addBlock("entry");
  fn.setEntry(blk);
  ValueId va = fn.emitRead(blk, pa);
  ValueId vb = fn.emitRead(blk, pb);
  ValueId r = fn.emitBinary(blk, k, va, vb, wr);
  fn.emitWrite(blk, po, r);
  fn.setReturn(blk);
  return fn;
}

std::vector<std::uint64_t> cornerValues(int w) {
  std::uint64_t m = maskBits(w);
  std::vector<std::uint64_t> vals = {0, 1, m, m - 1, m >> 1,
                                     (std::uint64_t)1 << (w - 1),
                                     0xAAAAAAAAAAAAAAAAull & m,
                                     123456789ull & m};
  return vals;
}

TEST(VmCorners, BinaryOpsAtExtremeWidths) {
  const OpKind kinds[] = {OpKind::Add, OpKind::Sub, OpKind::Mul,
                          OpKind::Div, OpKind::UDiv, OpKind::Mod,
                          OpKind::UMod, OpKind::And, OpKind::Or,
                          OpKind::Xor, OpKind::Shl, OpKind::Shr,
                          OpKind::Sar, OpKind::Eq,  OpKind::Ne,
                          OpKind::Lt,  OpKind::Le,  OpKind::Gt,
                          OpKind::Ge,  OpKind::ULt, OpKind::ULe,
                          OpKind::UGt, OpKind::UGe};
  for (int w : {1, 2, 7, 63, 64}) {
    for (OpKind k : kinds) {
      int wr = opIsCompare(k) ? 1 : w;
      Function fn = binaryFn(k, w, w, wr);
      Interpreter interp(fn);
      vm::BehavProgram p = vm::compileBehavioral(fn);
      vm::BehavScratch scratch;
      for (std::uint64_t a : cornerValues(w)) {
        for (std::uint64_t b : cornerValues(w)) {
          std::map<std::string, std::uint64_t> in = {{"a", a}, {"b", b}};
          ExecResult want = interp.run(in);
          ExecResult got = vm::runBehavProgram(p, scratch, in);
          ASSERT_EQ(want.outputs, got.outputs)
              << opName(k) << " w=" << w << " a=" << a << " b=" << b;
        }
      }
    }
  }
}

TEST(VmCorners, MixedWidthSignedDivision) {
  // Signed div/mod with operands of different widths exercises the
  // per-operand sign extension (INT64_MIN / -1 lives here at w=64).
  for (auto [wa, wb] : {std::pair{64, 8}, {8, 64}, {63, 64}, {64, 1}}) {
    for (OpKind k : {OpKind::Div, OpKind::Mod, OpKind::Lt, OpKind::Ge}) {
      int wr = opIsCompare(k) ? 1 : wa;
      Function fn = binaryFn(k, wa, wb, wr);
      Interpreter interp(fn);
      vm::BehavProgram p = vm::compileBehavioral(fn);
      vm::BehavScratch scratch;
      for (std::uint64_t a : cornerValues(wa)) {
        for (std::uint64_t b : cornerValues(wb)) {
          std::map<std::string, std::uint64_t> in = {{"a", a}, {"b", b}};
          ExecResult want = interp.run(in);
          ExecResult got = vm::runBehavProgram(p, scratch, in);
          ASSERT_EQ(want.outputs, got.outputs)
              << opName(k) << " wa=" << wa << " wb=" << wb << " a=" << a
              << " b=" << b;
        }
      }
    }
  }
}

TEST(VmCorners, UnaryAndConstantShifts) {
  for (int w : {1, 63, 64}) {
    for (OpKind k : {OpKind::Not, OpKind::Neg, OpKind::Inc, OpKind::Dec,
                     OpKind::SExt, OpKind::ZExt, OpKind::Trunc}) {
      Function fn("corner");
      PortId pa = fn.addInput("a", w);
      PortId po = fn.addOutput("o", 64);
      BlockId blk = fn.addBlock("entry");
      fn.setEntry(blk);
      ValueId va = fn.emitRead(blk, pa);
      ValueId r = fn.emitUnary(blk, k, va, 64);
      fn.emitWrite(blk, po, r);
      fn.setReturn(blk);
      Interpreter interp(fn);
      vm::BehavProgram p = vm::compileBehavioral(fn);
      vm::BehavScratch scratch;
      for (std::uint64_t a : cornerValues(w)) {
        std::map<std::string, std::uint64_t> in = {{"a", a}};
        ASSERT_EQ(interp.run(in).outputs,
                  vm::runBehavProgram(p, scratch, in).outputs)
            << opName(k) << " w=" << w << " a=" << a;
      }
    }
    // Constant shifts, including amounts >= the word width (defined as
    // shift-out-everything; SarConst clamps to 63).
    for (OpKind k : {OpKind::ShlConst, OpKind::ShrConst, OpKind::SarConst}) {
      for (std::int64_t imm : {0L, 1L, (long)w - 1, 63L, 64L, 100L}) {
        Function fn("corner");
        PortId pa = fn.addInput("a", w);
        PortId po = fn.addOutput("o", w);
        BlockId blk = fn.addBlock("entry");
        fn.setEntry(blk);
        ValueId va = fn.emitRead(blk, pa);
        ValueId r = fn.emitUnary(blk, k, va, w, imm);
        fn.emitWrite(blk, po, r);
        fn.setReturn(blk);
        Interpreter interp(fn);
        vm::BehavProgram p = vm::compileBehavioral(fn);
        vm::BehavScratch scratch;
        for (std::uint64_t a : cornerValues(w)) {
          std::map<std::string, std::uint64_t> in = {{"a", a}};
          ASSERT_EQ(interp.run(in).outputs,
                    vm::runBehavProgram(p, scratch, in).outputs)
              << opName(k) << " w=" << w << " imm=" << imm << " a=" << a;
        }
      }
    }
  }
}

// ------------------------------------------------------- RTL differential

SynthesisOptions pointOptions(SchedulerKind sched, StateEncoding enc,
                              bool multicycle) {
  SynthesisOptions so;
  so.scheduler = sched;
  so.encoding = enc;
  so.resources = ResourceLimits::universalSet(2);
  so.latencies =
      multicycle ? OpLatencyModel::multiCycle() : OpLatencyModel::unit();
  return so;
}

TEST(VmRtl, DifferentialSweepRandomPrograms) {
  const struct {
    SchedulerKind sched;
    StateEncoding enc;
    bool multicycle;
  } points[] = {
      {SchedulerKind::List, StateEncoding::Binary, false},
      {SchedulerKind::Asap, StateEncoding::OneHot, false},
      {SchedulerKind::List, StateEncoding::Binary, true},
  };
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    fuzz::GenProgram prog = fuzz::generateProgram(seed);
    std::string source = prog.render();
    for (const auto& pt : points) {
      Synthesizer synth(pointOptions(pt.sched, pt.enc, pt.multicycle));
      SynthesisResult r = synth.synthesizeSource(source);
      RtlSimulator sim(r.design);
      vm::RtlProgram p = vm::compileRtl(r.design);
      vm::RtlScratch scratch;
      for (int trial = 0; trial < 3; ++trial) {
        auto inputs = fuzz::randomInputs(prog.inputNames(), seed, trial);
        std::vector<CycleLog> wantLog, gotLog;
        RtlExecResult want = sim.run(inputs, 1000000, logObserver(wantLog));
        RtlExecResult got =
            vm::runRtlProgram(p, scratch, inputs, 1000000,
                              logObserver(gotLog));
        std::ostringstream ctx;
        ctx << "seed " << seed << " mc=" << pt.multicycle << " trial "
            << trial;
        EXPECT_EQ(want.outputs, got.outputs) << ctx.str();
        EXPECT_EQ(want.cycles, got.cycles) << ctx.str();
        EXPECT_EQ(want.finished, got.finished) << ctx.str();
        ASSERT_EQ(wantLog.size(), gotLog.size()) << ctx.str();
        for (std::size_t i = 0; i < wantLog.size(); ++i)
          ASSERT_TRUE(wantLog[i] == gotLog[i])
              << ctx.str() << " cycle " << i;
      }
    }
  }
}

TEST(VmRtl, BuiltinsBitIdentical) {
  for (const auto& d : designs::all()) {
    for (bool multicycle : {false, true}) {
      Synthesizer synth(pointOptions(SchedulerKind::List,
                                     StateEncoding::Binary, multicycle));
      SynthesisResult r = synth.synthesizeSource(d.source);
      RtlSimulator sim(r.design);
      vm::RtlProgram p = vm::compileRtl(r.design);
      vm::RtlScratch scratch;
      std::vector<CycleLog> wantLog, gotLog;
      RtlExecResult want =
          sim.run(d.sampleInputs, 1000000, logObserver(wantLog));
      RtlExecResult got = vm::runRtlProgram(p, scratch, d.sampleInputs,
                                            1000000, logObserver(gotLog));
      std::string ctx = std::string(d.name) + " mc=" +
                        std::to_string(multicycle);
      EXPECT_EQ(want.outputs, got.outputs) << ctx;
      EXPECT_EQ(want.cycles, got.cycles) << ctx;
      EXPECT_TRUE(got.finished) << ctx;
      ASSERT_EQ(wantLog.size(), gotLog.size()) << ctx;
      for (std::size_t i = 0; i < wantLog.size(); ++i)
        ASSERT_TRUE(wantLog[i] == gotLog[i]) << ctx << " cycle " << i;
    }
  }
}

TEST(VmRtl, MaxCyclesMatchesSimulator) {
  // gcd with inputs that take many cycles: cap below completion and
  // compare the truncated runs.
  Synthesizer synth(
      pointOptions(SchedulerKind::List, StateEncoding::Binary, false));
  SynthesisResult r = synth.synthesizeSource(designs::gcdSource());
  std::map<std::string, std::uint64_t> in = {{"a0", 1071}, {"b0", 462}};
  RtlSimulator sim(r.design);
  vm::RtlProgram p = vm::compileRtl(r.design);
  vm::RtlScratch scratch;
  for (long cap : {0L, 1L, 5L, 17L}) {
    RtlExecResult want = sim.run(in, cap);
    RtlExecResult got = vm::runRtlProgram(p, scratch, in, cap);
    EXPECT_EQ(want.outputs, got.outputs) << "cap " << cap;
    EXPECT_EQ(want.cycles, got.cycles) << "cap " << cap;
    EXPECT_EQ(want.finished, got.finished) << "cap " << cap;
  }
}

// ------------------------------------------------------------ VCD identity

TEST(VmRtl, VcdByteIdentical) {
  Synthesizer synth(
      pointOptions(SchedulerKind::List, StateEncoding::Binary, false));
  SynthesisResult r = synth.synthesizeSource(designs::sqrtSource());
  std::map<std::string, std::uint64_t> in = {{"x", 3000}};

  SimTraceRecorder recInterp(r.design);
  recInterp.begin(in);
  RtlExecResult want =
      RtlSimulator(r.design).run(in, 1000000, recInterp.observer());
  recInterp.finish();

  SimTraceRecorder recVm(r.design);
  recVm.begin(in);
  vm::RtlSim engine(r.design);  // default engine: Vm
  RtlExecResult got = engine.run(in, 1000000, recVm.observer());
  recVm.finish();

  EXPECT_EQ(want.outputs, got.outputs);
  EXPECT_EQ(recInterp.vcd().render(), recVm.vcd().render());
  EXPECT_EQ(recInterp.coverage().visitedStates,
            recVm.coverage().visitedStates);
  EXPECT_EQ(recInterp.coverage().visitedTransitions,
            recVm.coverage().visitedTransitions);
  EXPECT_EQ(recInterp.fuUtilization(), recVm.fuUtilization());
}

// ---------------------------------------------------------- compile cache

TEST(VmEngine, CompilesOncePerEngine) {
  Synthesizer synth(
      pointOptions(SchedulerKind::List, StateEncoding::Binary, false));
  SynthesisResult r = synth.synthesizeSource(designs::sqrtSource());
  auto& compiles = obs::MetricsRegistry::global().counter("vm.compiles");

  std::uint64_t before = compiles.value();
  vm::RtlSim engine(r.design);
  EXPECT_EQ(compiles.value(), before + 1);
  for (int i = 0; i < 5; ++i) {
    auto res = engine.run({{"x", (std::uint64_t)(1000 + i)}});
    EXPECT_TRUE(res.finished);
  }
  EXPECT_EQ(compiles.value(), before + 1) << "runs must not recompile";

  Function fn = compileBdlOrThrow(designs::gcdSource());
  before = compiles.value();
  vm::BehavSim behav(fn);
  EXPECT_EQ(compiles.value(), before + 1);
  for (int i = 0; i < 5; ++i)
    (void)behav.run({{"a0", 12u + (std::uint64_t)i}, {"b0", 18}});
  EXPECT_EQ(compiles.value(), before + 1);

  // The interpreter engine never compiles.
  vm::EngineOptions interp;
  interp.kind = vm::EngineKind::Interp;
  before = compiles.value();
  vm::BehavSim behavInterp(fn, interp);
  (void)behavInterp.run({{"a0", 12}, {"b0", 18}});
  EXPECT_EQ(compiles.value(), before);
}

// ------------------------------------------------------------- engine modes

TEST(VmEngine, BothModeRunsCleanOnBuiltins) {
  vm::EngineOptions both;
  both.kind = vm::EngineKind::Both;
  for (const auto& d : designs::all()) {
    Function fn = compileBdlOrThrow(d.source);
    vm::BehavSim behav(fn, both);
    ExecResult want = Interpreter(fn).run(d.sampleInputs);
    ExecResult got = behav.run(d.sampleInputs);  // throws on divergence
    EXPECT_EQ(want.outputs, got.outputs) << d.name;

    Synthesizer synth(
        pointOptions(SchedulerKind::List, StateEncoding::Binary, false));
    SynthesisResult r = synth.synthesizeSource(d.source);
    vm::RtlSim sim(r.design, both);
    RtlExecResult rr = sim.run(d.sampleInputs);  // throws on divergence
    EXPECT_EQ(rr.outputs, want.outputs) << d.name;
  }
}

TEST(VmEngine, CrossCheckSamplingIsDeterministic) {
  Function fn = compileBdlOrThrow(designs::gcdSource());
  auto& checks = obs::MetricsRegistry::global().counter("vm.cross_checks");

  auto countChecks = [&](double rate, std::uint64_t seed) {
    vm::EngineOptions opts;
    opts.crossCheck = rate;
    opts.seed = seed;
    vm::BehavSim engine(fn, opts);
    std::uint64_t before = checks.value();
    for (int i = 0; i < 200; ++i)
      (void)engine.run({{"a0", (std::uint64_t)i}, {"b0", 18}});
    return checks.value() - before;
  };

  EXPECT_EQ(countChecks(0.0, 7), 0u);
  EXPECT_EQ(countChecks(1.0, 7), 200u);
  std::uint64_t sampled = countChecks(0.25, 7);
  EXPECT_GT(sampled, 20u);
  EXPECT_LT(sampled, 100u);
  // Same seed, same draws.
  EXPECT_EQ(countChecks(0.25, 7), sampled);
}

}  // namespace
}  // namespace mphls
