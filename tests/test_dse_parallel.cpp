// Parallel design-space exploration and the synthesis-throughput layer:
// IR clone round-trips, thread pool / parallelFor behavior, frontend-cache
// sharing, determinism of the sweeps at every thread count (points and
// emitted Verilog byte-identical), stable Pareto marking, and equality of
// the incremental force-directed scheduler with the from-scratch
// reference. All tests in this file share the DseParallel* prefix so the
// ThreadSanitizer CI job can select them with one gtest filter.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <set>

#include "common/thread_pool.h"
#include "core/designs.h"
#include "core/dse.h"
#include "core/frontend_cache.h"
#include "ir/analysis.h"
#include "ir/verify.h"
#include "sched/force_directed.h"
#include "sched/schedule.h"

using namespace mphls;

namespace {

// The Fig. 5 distribution-graph example: a1 -> a2 -> m, a3 off a1.
Function fig5Graph() {
  Function fn("fig5");
  BlockId b = fn.addBlock("entry");
  ValueId va = fn.emitRead(b, fn.addInput("a", 8));
  ValueId vb = fn.emitRead(b, fn.addInput("b", 8));
  ValueId vc = fn.emitRead(b, fn.addInput("c", 8));
  ValueId a1 = fn.emitBinary(b, OpKind::Add, va, vb);
  ValueId a2 = fn.emitBinary(b, OpKind::Add, a1, vc);
  ValueId a3 = fn.emitBinary(b, OpKind::Add, a1, va);
  ValueId m = fn.emitBinary(b, OpKind::Mul, a2, vc);
  fn.emitWrite(b, fn.addOutput("y", 8), m);
  fn.emitWrite(b, fn.addOutput("z", 8), a3);
  fn.setReturn(b);
  return fn;
}

// Deterministic random single-block DFG (xorshift; no global state).
Function randomDfg(int numOps, std::uint64_t seed) {
  Function fn("rand" + std::to_string(seed));
  BlockId b = fn.addBlock("entry");
  std::vector<ValueId> pool;
  for (int i = 0; i < 3; ++i)
    pool.push_back(fn.emitRead(b, fn.addInput("p" + std::to_string(i), 8)));
  std::uint64_t s = seed ? seed : 1;
  auto next = [&s] {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  };
  for (int i = 0; i < numOps; ++i) {
    ValueId a = pool[next() % pool.size()];
    ValueId c = pool[next() % pool.size()];
    OpKind k = (next() % 3 == 0) ? OpKind::Mul : OpKind::Add;
    pool.push_back(fn.emitBinary(b, k, a, c));
  }
  fn.emitWrite(b, fn.addOutput("y", 8), pool.back());
  fn.setReturn(b);
  return fn;
}

std::vector<DsePoint> sweepWithJobs(const char* src, int maxFus, int jobs) {
  SynthesisOptions base;
  base.jobs = jobs;
  base.dseCaptureVerilog = true;
  return exploreResourceSweep(src, maxFus, base);
}

void expectPointsIdentical(const std::vector<DsePoint>& a,
                           const std::vector<DsePoint>& b) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_EQ(renderPoints(a), renderPoints(b));
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(samePoint(a[i], b[i])) << "point " << i << " differs";
    EXPECT_FALSE(a[i].verilog.empty());
    EXPECT_EQ(a[i].verilog, b[i].verilog) << "Verilog differs at " << i;
  }
}

}  // namespace

// ------------------------------------------------------------------ clone

TEST(DseParallelClone, DeepCopyIsIndependent) {
  auto cached = FrontendCache::global().get(designs::diffeqSource(), "",
                                            OptLevel::Standard);
  Function copy = cached->clone();
  EXPECT_EQ(verifyFunction(*cached), "");
  EXPECT_EQ(verifyFunction(copy), "");
  EXPECT_EQ(cached->dump(), copy.dump());

  // Mutating the clone must not leak into the cached original.
  const std::string before = cached->dump();
  copy.addVar("clone_only", 8);
  copy.emitNop(copy.entry());
  EXPECT_NE(copy.dump(), before);
  EXPECT_EQ(cached->dump(), before);
  EXPECT_EQ(verifyFunction(*cached), "");
}

TEST(DseParallelClone, AllBuiltinDesignsCloneClean) {
  for (const auto& d : designs::all()) {
    auto cached =
        FrontendCache::global().get(d.source, "", OptLevel::Standard);
    Function copy = cached->clone();
    EXPECT_EQ(verifyFunction(copy), "") << d.name;
    EXPECT_EQ(copy.dump(), cached->dump()) << d.name;
  }
}

// ------------------------------------------------------------- thread pool

TEST(DseParallelPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(997);
  parallelFor(&pool, hits.size(), [&](std::size_t i, int worker) {
    EXPECT_GE(worker, 0);
    EXPECT_LT(worker, 4);
    hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(DseParallelPool, SerialBypassRunsInline) {
  std::vector<int> order;
  parallelFor(nullptr, 5, [&](std::size_t i, int worker) {
    EXPECT_EQ(worker, 0);
    order.push_back(static_cast<int>(i));  // no pool: strictly in order
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(DseParallelPool, SubmitReturnsValues) {
  ThreadPool pool(3);
  std::vector<std::future<int>> futs;
  for (int i = 0; i < 50; ++i)
    futs.push_back(pool.submit([i] { return i * i; }));
  for (int i = 0; i < 50; ++i) EXPECT_EQ(futs[(std::size_t)i].get(), i * i);
}

TEST(DseParallelPool, WorkStealingDrainsUnevenLoad) {
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  parallelFor(&pool, 64, [&](std::size_t i, int) {
    long local = 0;  // index 0 is ~64x the work of index 63
    const long spin = 2000 * static_cast<long>(64 - i);
    for (long k = 0; k < spin; ++k) local += k % 7;
    sum.fetch_add(local % 1000 + static_cast<long>(i));
  });
  EXPECT_GT(sum.load(), 0);
}

TEST(DseParallelPool, ExceptionsPropagateToCaller) {
  ThreadPool pool(2);
  EXPECT_THROW(
      parallelFor(&pool, 8,
                  [&](std::size_t i, int) {
                    if (i == 3) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
}

TEST(DseParallelPool, ResolveJobsSemantics) {
  EXPECT_EQ(resolveJobs(1), 1);
  EXPECT_EQ(resolveJobs(7), 7);
  EXPECT_GE(resolveJobs(0), 1);   // hardware concurrency
  EXPECT_GE(resolveJobs(-3), 1);
}

// ---------------------------------------------------------- frontend cache

TEST(DseParallelCache, SharesOneCompiledFunction) {
  FrontendCache cache;
  auto a = cache.get(designs::gcdSource(), "", OptLevel::Standard);
  auto b = cache.get(designs::gcdSource(), "", OptLevel::Standard);
  EXPECT_EQ(a.get(), b.get());  // same cached object
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 1u);
  // A different optimization level is a different design.
  auto c = cache.get(designs::gcdSource(), "", OptLevel::None);
  EXPECT_NE(a.get(), c.get());
  EXPECT_EQ(cache.size(), 2u);
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(DseParallelCache, ConcurrentGetsAreSafe) {
  FrontendCache cache;
  ThreadPool pool(4);
  std::vector<std::shared_ptr<const Function>> got(32);
  parallelFor(&pool, got.size(), [&](std::size_t i, int) {
    got[i] = cache.get(designs::ewfSource(), "", OptLevel::Standard);
  });
  for (const auto& fn : got) {
    ASSERT_NE(fn, nullptr);
    EXPECT_EQ(fn->dump(), got[0]->dump());
  }
}

// ------------------------------------------------- deterministic sweeps

TEST(DseParallelSweep, ResourceSweepIdenticalAcrossJobCounts) {
  auto serial = sweepWithJobs(designs::diffeqSource(), 8, 1);
  auto parallel = sweepWithJobs(designs::diffeqSource(), 8, 4);
  expectPointsIdentical(serial, parallel);
}

TEST(DseParallelSweep, ResourceSweepRecordsDiagnostics) {
  auto points = sweepWithJobs(designs::diffeqSource(), 4, 4);
  for (const auto& p : points) {
    EXPECT_GT(p.wallSeconds, 0.0);
    EXPECT_GE(p.threadId, 0);
    EXPECT_LT(p.threadId, 4);
  }
}

TEST(DseParallelSweep, TimeSweepIdenticalAcrossJobCounts) {
  SynthesisOptions base;
  base.dseCaptureVerilog = true;
  base.jobs = 1;
  auto serial = exploreTimeSweep(designs::diffeqSource(), 4, base);
  base.jobs = 4;
  auto parallel = exploreTimeSweep(designs::diffeqSource(), 4, base);
  expectPointsIdentical(serial, parallel);
}

TEST(DseParallelSweep, ChippeIdenticalAcrossJobCounts) {
  auto probe = sweepWithJobs(designs::ewfSource(), 4, 1);
  const int target = probe[2].latencySteps;
  SynthesisOptions base;
  base.dseCaptureVerilog = true;
  base.jobs = 1;
  auto serial = chippeIterate(designs::ewfSource(), target, 8, base);
  base.jobs = 4;
  auto parallel = chippeIterate(designs::ewfSource(), target, 8, base);
  expectPointsIdentical(serial, parallel);
}

TEST(DseParallelSweep, MatchesLegacyPerPointSynthesis) {
  // The shared-frontend + clone path must reproduce what a from-source
  // synthesis of each point produces.
  auto points = sweepWithJobs(designs::diffeqSource(), 4, 4);
  for (int n = 1; n <= 4; ++n) {
    SynthesisOptions opts;
    opts.scheduler = SchedulerKind::List;
    opts.resources = ResourceLimits::universalSet(n);
    Synthesizer synth(opts);
    SynthesisResult r = synth.synthesizeSource(designs::diffeqSource());
    const DsePoint& p = points[(std::size_t)n - 1];
    EXPECT_EQ(p.latencySteps, r.staticLatency());
    EXPECT_EQ(p.area, r.area.total());
    EXPECT_EQ(p.cycleTime, r.timing.cycleTime);
  }
}

// ----------------------------------------------------------- markPareto

TEST(DseParallelPareto, OrderIndependentAndStableUnderTies) {
  auto mk = [](const char* label, int lat, double area) {
    DsePoint p;
    p.label = label;
    p.latencySteps = lat;
    p.area = area;
    return p;
  };
  std::vector<DsePoint> pts = {
      mk("a", 10, 100), mk("b", 8, 120), mk("c", 8, 120),  // exact ties
      mk("d", 12, 100),  // same area as a, slower: dominated
      mk("e", 6, 200),
  };
  auto sorted = pts;
  markPareto(sorted);
  // Exact-tie duplicates share a fate (both on the front here).
  EXPECT_TRUE(sorted[1].pareto);
  EXPECT_TRUE(sorted[2].pareto);
  EXPECT_TRUE(sorted[0].pareto);
  EXPECT_FALSE(sorted[3].pareto);  // dominated by a (equal area, faster)
  EXPECT_TRUE(sorted[4].pareto);

  // Any permutation yields the same per-label marking.
  std::vector<std::size_t> perm = {4, 2, 0, 3, 1};
  std::vector<DsePoint> shuffled;
  for (std::size_t i : perm) shuffled.push_back(pts[i]);
  markPareto(shuffled);
  for (const auto& p : shuffled) {
    for (const auto& q : sorted) {
      if (p.label == q.label) {
        EXPECT_EQ(p.pareto, q.pareto) << p.label;
      }
    }
  }
}

TEST(DseParallelPareto, DominationMatchesDefinition) {
  auto mk = [](int lat, double area) {
    DsePoint p;
    p.label = std::to_string(lat) + "/" + std::to_string(area);
    p.latencySteps = lat;
    p.area = area;
    return p;
  };
  std::vector<DsePoint> pts = {mk(5, 50), mk(6, 40), mk(7, 30),
                               mk(6, 45), mk(8, 30)};
  markPareto(pts);
  EXPECT_TRUE(pts[0].pareto);
  EXPECT_TRUE(pts[1].pareto);
  EXPECT_TRUE(pts[2].pareto);
  EXPECT_FALSE(pts[3].pareto);  // beaten by (6,40)
  EXPECT_FALSE(pts[4].pareto);  // beaten by (7,30)
}

// ------------------------------------- incremental force-directed equality

TEST(DseParallelForceDirected, MatchesReferenceOnFig5) {
  Function fn = fig5Graph();
  BlockDeps deps(fn, fn.block(fn.entry()));
  const int critical = computeLevels(deps).criticalLength;
  for (int horizon = critical; horizon <= critical + 3; ++horizon) {
    BlockSchedule inc = forceDirectedSchedule(deps, horizon);
    BlockSchedule ref = forceDirectedScheduleReference(deps, horizon);
    EXPECT_EQ(inc.step, ref.step) << "horizon " << horizon;
    EXPECT_EQ(inc.numSteps, ref.numSteps) << "horizon " << horizon;
  }
}

TEST(DseParallelForceDirected, MatchesReferenceOnDiffeqAndBuiltins) {
  for (const auto& d : designs::all()) {
    auto fn = FrontendCache::global().get(d.source, "", OptLevel::Standard);
    for (const auto& blk : fn->blocks()) {
      if (blk.ops.empty()) continue;
      BlockDeps deps(*fn, blk);
      LevelInfo li = computeLevels(deps);
      for (int slack = 0; slack <= 3; ++slack) {
        const int horizon = li.criticalLength + slack;
        BlockSchedule inc = forceDirectedSchedule(deps, horizon);
        BlockSchedule ref = forceDirectedScheduleReference(deps, horizon);
        EXPECT_EQ(inc.step, ref.step)
            << d.name << " block " << blk.name << " horizon " << horizon;
        EXPECT_EQ(inc.numSteps, ref.numSteps);
      }
    }
  }
}

TEST(DseParallelForceDirected, MatchesReferenceOnRandomDfgs) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Function fn = randomDfg(18, seed * 7919);
    BlockDeps deps(fn, fn.block(fn.entry()));
    LevelInfo li = computeLevels(deps);
    for (int slack : {0, 1, 3}) {
      const int horizon = li.criticalLength + slack;
      BlockSchedule inc = forceDirectedSchedule(deps, horizon);
      BlockSchedule ref = forceDirectedScheduleReference(deps, horizon);
      ASSERT_EQ(inc.step, ref.step)
          << "seed " << seed << " horizon " << horizon;
    }
  }
}

TEST(DseParallelForceDirected, SchedulesRemainValid) {
  Function fn = randomDfg(20, 42);
  BlockDeps deps(fn, fn.block(fn.entry()));
  LevelInfo li = computeLevels(deps);
  BlockSchedule s = forceDirectedSchedule(deps, li.criticalLength + 2);
  EXPECT_EQ(validateBlockSchedule(deps, s), "");
}
