// Multicycle functional-unit tests: slow multipliers/dividers occupy their
// unit for several control steps, consumers wait for completion, and the
// synthesized RTL still matches the behavioral specification exactly.
#include <gtest/gtest.h>

#include "core/designs.h"
#include "core/synthesizer.h"
#include "ir/analysis.h"
#include "lang/frontend.h"
#include "sched/asap.h"
#include "sched/bnb.h"
#include "sched/freedom.h"
#include "sched/list_sched.h"
#include "sched/sched_util.h"
#include "sched/transform_sched.h"

namespace mphls {
namespace {

const char* kMacSrc =
    "proc mac(in a: uint<16>, in b: uint<16>, in c: uint<16>,"
    " out y: uint<16>) { y = a * b + c; }";

TEST(Multicycle, EdgeLatencyReflectsProducerSpan) {
  Function fn = compileBdlOrThrow(kMacSrc);
  BlockDeps unit(fn, fn.block(fn.entry()));
  BlockDeps multi(fn, fn.block(fn.entry()), OpLatencyModel::multiCycle());
  // Find the mul -> add data edge.
  int unitLat = -1, multiLat = -1;
  for (const DepEdge& e : unit.edges()) {
    if (unit.op(e.from).kind == OpKind::Mul &&
        unit.op(e.to).kind == OpKind::Add) {
      unitLat = unit.edgeLatency(e);
    }
  }
  for (const DepEdge& e : multi.edges()) {
    if (multi.op(e.from).kind == OpKind::Mul &&
        multi.op(e.to).kind == OpKind::Add) {
      multiLat = multi.edgeLatency(e);
    }
  }
  EXPECT_EQ(unitLat, 1);
  EXPECT_EQ(multiLat, 2);  // 2-cycle multiplier
}

TEST(Multicycle, CriticalLengthCountsSpans) {
  Function fn = compileBdlOrThrow(kMacSrc);
  BlockDeps multi(fn, fn.block(fn.entry()), OpLatencyModel::multiCycle());
  LevelInfo li = computeLevels(multi);
  // mul (2 cycles) then add (1 cycle): critical length 3.
  EXPECT_EQ(li.criticalLength, 3);
}

TEST(Multicycle, SerialScheduleAdvancesBySpan) {
  Function fn = compileBdlOrThrow(kMacSrc);
  BlockDeps multi(fn, fn.block(fn.entry()), OpLatencyModel::multiCycle());
  BlockSchedule s = serialSchedule(multi);
  EXPECT_EQ(validateBlockSchedule(multi, s), "");
  EXPECT_EQ(s.numSteps, 3);  // mul spans 2, add 1
}

TEST(Multicycle, SchedulersRespectBusySpans) {
  // Two independent multiplies, one multiplier: the second must wait for
  // the first to release the unit (issue gap >= 2).
  Function fn = compileBdlOrThrow(
      "proc f(in a: uint<16>, in b: uint<16>, out y: uint<16>,"
      " out z: uint<16>) { y = a * b; z = a * a; }");
  auto model = OpLatencyModel::multiCycle();
  BlockDeps deps(fn, fn.block(fn.entry()), model);
  auto limits = ResourceLimits::withClasses({{FuClass::Multiplier, 1}});
  for (int which = 0; which < 4; ++which) {
    BlockSchedule s;
    switch (which) {
      case 0: s = asapResourceSchedule(deps, limits); break;
      case 1: s = listSchedule(deps, limits, ListPriority::PathLength); break;
      case 2: s = branchBoundSchedule(deps, limits).schedule; break;
      default:
        s = transformationalSchedule(deps, limits).schedule;
        break;
    }
    EXPECT_EQ(validateBlockSchedule(deps, s, limits), "") << which;
    // Two 2-cycle muls serialized on one unit: 4 steps minimum.
    EXPECT_GE(s.numSteps, 4) << which;
  }
}

TEST(Multicycle, TwoMultipliersOverlap) {
  Function fn = compileBdlOrThrow(
      "proc f(in a: uint<16>, in b: uint<16>, out y: uint<16>,"
      " out z: uint<16>) { y = a * b; z = a * a; }");
  auto model = OpLatencyModel::multiCycle();
  BlockDeps deps(fn, fn.block(fn.entry()), model);
  auto limits = ResourceLimits::withClasses({{FuClass::Multiplier, 2}});
  BlockSchedule s = listSchedule(deps, limits, ListPriority::PathLength);
  EXPECT_EQ(validateBlockSchedule(deps, s, limits), "");
  EXPECT_EQ(s.numSteps, 2);  // both muls in flight simultaneously
}

class MulticycleEndToEnd : public ::testing::TestWithParam<int> {};

TEST_P(MulticycleEndToEnd, RtlMatchesBehavior) {
  const auto& design = designs::all()[(std::size_t)GetParam()];
  SynthesisOptions opts;
  opts.scheduler = SchedulerKind::List;
  opts.resources = ResourceLimits::universalSet(2);
  opts.latencies = OpLatencyModel::multiCycle();
  Synthesizer synth(opts);
  SynthesisResult r = synth.synthesizeSource(design.source);

  std::uint64_t seed = 4242;
  for (int trial = 0; trial < 4; ++trial) {
    auto inputs = design.sampleInputs;
    if (trial > 0) {
      for (auto& [k, v] : inputs) {
        seed = seed * 6364136223846793005ull + 1442695040888963407ull;
        v = std::max<std::uint64_t>(1, (v + (seed >> 54)) & 0x3FF);
      }
    }
    EXPECT_EQ(verifyAgainstBehavior(r, inputs), "")
        << design.name << " trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Designs, MulticycleEndToEnd,
                         ::testing::Range(0, (int)designs::all().size()),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return designs::all()[(std::size_t)info.param]
                               .name;
                         });

TEST(Multicycle, LatencyVsClockTradeoff) {
  // The point of multicycle units: more control steps, shorter clock.
  SynthesisOptions fast;
  fast.scheduler = SchedulerKind::List;
  fast.resources = ResourceLimits::universalSet(2);
  SynthesisOptions multi = fast;
  multi.latencies = OpLatencyModel::multiCycle();

  Synthesizer s1(fast), s2(multi);
  auto r1 = s1.synthesizeSource(designs::sqrtSource());
  auto r2 = s2.synthesizeSource(designs::sqrtSource());
  EXPECT_GT(r2.staticLatency(), r1.staticLatency());
  EXPECT_LT(r2.timing.cycleTime, r1.timing.cycleTime);
}

TEST(Multicycle, LifetimeBirthAtCompletion) {
  Function fn = compileBdlOrThrow(kMacSrc);
  auto model = OpLatencyModel::multiCycle();
  Schedule sched = scheduleFunction(
      fn,
      [&](const BlockDeps& d) {
        return listSchedule(d, ResourceLimits::universalSet(2),
                            ListPriority::PathLength);
      },
      model);
  LifetimeInfo lt = computeLifetimes(fn, sched, model);
  // The mul result (if registered) is born at completion (step 1), not
  // issue (step 0).
  for (const auto& item : lt.items) {
    if (item.kind != StorageItem::Kind::Temp) continue;
    const Op& def = fn.defOf(item.value);
    if (def.kind == OpKind::Mul) {
      EXPECT_GE(item.live.birth, 1);
    }
  }
}

TEST(Multicycle, ForceDirectedRejectsMulticycle) {
  SynthesisOptions opts;
  opts.scheduler = SchedulerKind::ForceDirected;
  opts.latencies = OpLatencyModel::multiCycle();
  Synthesizer synth(opts);
  EXPECT_THROW((void)synth.synthesizeSource(kMacSrc), InternalError);
}

}  // namespace
}  // namespace mphls
