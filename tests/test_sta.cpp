// Tests for the path-level static timing engine (src/sta/) and the
// timing-closure lint (check/check_timing.h): hand-computed critical
// paths against the library delay model, estimator cross-validation on
// every builtin, state-aware false-path pruning on multicycle designs,
// and the negative-slack / chain-overrun diagnostics.
#include <gtest/gtest.h>

#include <algorithm>

#include "check/check_timing.h"
#include "check/report.h"
#include "core/designs.h"
#include "core/synthesizer.h"
#include "estim/estimate.h"
#include "sta/sta.h"

namespace mphls {
namespace {

SynthesisResult synth(const char* src, int fus = 2,
                      OpLatencyModel lat = OpLatencyModel::unit()) {
  SynthesisOptions o;
  o.scheduler = SchedulerKind::List;
  o.resources = ResourceLimits::universalSet(fus);
  o.latencies = lat;
  Synthesizer s(o);
  return s.synthesizeSource(src);
}

bool hasDiag(const CheckReport& rep, const std::string& id,
             CheckSeverity sev) {
  for (const CheckDiag& d : rep.sorted())
    if (d.id == id && d.severity == sev) return true;
  return false;
}

// ------------------------------------------------------------ hand-computed

TEST(Sta, HandComputedAdderPath) {
  // One 16-bit add, single-leg muxes (free): critical path is the input
  // port through the adder into the output port. Library adder delay is
  // 1.0 + 0.35/bit, register/port setup 0.5.
  auto r = synth(
      "proc f(in a: uint<16>, in b: uint<16>, out y: uint<16>) {"
      " y = a + b; }");
  const double adder = 1.0 + 0.35 * 16;
  sta::StaResult s = sta::runSta(r.design);
  EXPECT_NEAR(s.cycleTime, adder + 0.5, 1e-9);
  EXPECT_NEAR(r.timing.cycleTime, adder + 0.5, 1e-9);
  EXPECT_TRUE(s.clockWasEstimated);
  EXPECT_NEAR(s.worstSlack, 0.0, 1e-9);
  ASSERT_FALSE(s.paths.empty());
  const sta::TimingPath& p = s.paths.front();
  EXPECT_EQ(p.endpoint, "port y");
  ASSERT_GE(p.points.size(), 2u);
  // The capture point contributes exactly the setup time.
  EXPECT_NEAR(p.points.back().incr, 0.5, 1e-9);
  EXPECT_NEAR(p.points.back().arrival, p.arrival, 1e-9);
}

TEST(Sta, ArrivalsAccumulateAlongReportedPaths) {
  auto r = synth(designs::sqrtSource());
  sta::StaResult s = sta::runSta(r.design);
  for (const sta::TimingPath& p : s.paths) {
    ASSERT_FALSE(p.points.empty());
    double acc = 0;
    for (const sta::PathPoint& pt : p.points) {
      acc += pt.incr;
      EXPECT_NEAR(pt.arrival, acc, 1e-9) << p.describe();
    }
    EXPECT_NEAR(p.arrival, acc, 1e-9);
    EXPECT_NEAR(p.slack, p.required - p.arrival, 1e-9);
  }
}

// ----------------------------------------------------- estimator agreement

TEST(Sta, BuiltinsAgreeWithEstimator) {
  for (const auto& d : designs::all()) {
    auto r = synth(d.source);
    sta::StaResult s = sta::runSta(r.design);
    EXPECT_NEAR(s.cycleTime, r.timing.cycleTime, 1e-6) << d.name;
    EXPECT_NEAR(s.estimatedCycleTime, r.timing.cycleTime, 1e-6) << d.name;
    // At the estimated clock every builtin closes timing exactly.
    EXPECT_NEAR(s.worstSlack, 0.0, 1e-9) << d.name;
    EXPECT_EQ(s.criticalState, r.timing.criticalState) << d.name;
    EXPECT_FALSE(s.combLoop) << d.name;
    EXPECT_GT(s.endpointCount, 0u) << d.name;
    EXPECT_EQ(s.reachableStates, s.totalStates) << d.name;
    // Structural analysis can only be more pessimistic.
    EXPECT_GE(s.structuralCycleTime, s.cycleTime - 1e-9) << d.name;
  }
}

TEST(Sta, BuiltinsAgreeWithEstimatorMulticycle) {
  for (const auto& d : designs::all()) {
    auto r = synth(d.source, 2, OpLatencyModel::multiCycle());
    sta::StaResult s = sta::runSta(r.design);
    EXPECT_NEAR(s.cycleTime, r.timing.cycleTime, 1e-6) << d.name;
    EXPECT_NEAR(s.worstSlack, 0.0, 1e-9) << d.name;
  }
}

// ------------------------------------------------------- slack and clocks

TEST(Sta, ExplicitClockSetsRequiredAndSlack) {
  auto r = synth(designs::gcdSource());
  sta::StaOptions loose;
  loose.clockNs = 100.0;
  sta::StaResult s = sta::runSta(r.design, loose);
  EXPECT_FALSE(s.clockWasEstimated);
  EXPECT_NEAR(s.worstSlack, 100.0 - s.cycleTime, 1e-9);
  EXPECT_GT(s.worstSlack, 0.0);

  sta::StaOptions tight;
  tight.clockNs = 2.0;
  sta::StaResult t = sta::runSta(r.design, tight);
  EXPECT_LT(t.worstSlack, 0.0);
  ASSERT_FALSE(t.paths.empty());
  EXPECT_NEAR(t.paths.front().slack, t.worstSlack, 1e-9);
  // Clock choice never changes arrivals, only required times.
  EXPECT_NEAR(t.cycleTime, s.cycleTime, 1e-12);
}

TEST(Sta, PathsSortedBySlackAndBounded) {
  auto r = synth(designs::ewfSource());
  sta::StaOptions o;
  o.maxPaths = 3;
  sta::StaResult s = sta::runSta(r.design, o);
  ASSERT_LE(s.paths.size(), 3u);
  for (std::size_t i = 1; i < s.paths.size(); ++i)
    EXPECT_LE(s.paths[i - 1].slack, s.paths[i].slack + 1e-12);
  sta::StaOptions none;
  none.maxPaths = 0;
  EXPECT_TRUE(sta::runSta(r.design, none).paths.empty());
}

TEST(Sta, StateArrivalsCoverReachableStates) {
  auto r = synth(designs::diffeqSource());
  sta::StaResult s = sta::runSta(r.design);
  EXPECT_EQ(s.stateArrivals.size(), s.reachableStates);
  double worst = 0;
  for (const auto& [st, arr] : s.stateArrivals) {
    EXPECT_GE(st, 0);
    EXPECT_LT((std::size_t)st, s.totalStates);
    worst = std::max(worst, arr);
  }
  EXPECT_NEAR(worst, s.cycleTime, 1e-9);
}

// -------------------------------------------------- false-path pruning

TEST(Sta, MulticycleSqrtPrunesFalsePaths) {
  // Under the multicycle latency model the divider and multiplier spread
  // over several states; structurally their outputs look like full-delay
  // cones into every capture mux leg, but no single reachable state
  // sensitizes launch and capture together — the state-aware analysis
  // prunes those paths and the cycle time drops accordingly.
  auto r = synth(designs::sqrtSource(), 2, OpLatencyModel::multiCycle());
  sta::StaResult s = sta::runSta(r.design);
  EXPECT_GT(s.structuralCycleTime, s.cycleTime + 1.0);
  EXPECT_GE(s.falsePathEndpoints, 1u);
  EXPECT_NEAR(s.cycleTime, r.timing.cycleTime, 1e-6);
}

// ------------------------------------------------------------ JSON report

TEST(Sta, JsonReportDeterministicAndComplete) {
  auto r = synth(designs::fir8Source());
  sta::StaResult s = sta::runSta(r.design);
  JsonValue a = sta::staReportJson("design", "fir8", s);
  JsonValue b = sta::staReportJson("design", "fir8", s);
  EXPECT_EQ(a.dump(), b.dump());
  const std::string text = a.dump();
  for (const char* key :
       {"\"design\"", "\"clock_ns\"", "\"cycle_time\"", "\"worst_slack\"",
        "\"critical_state\"", "\"structural_cycle_time\"",
        "\"false_path_endpoints\"", "\"paths\"", "\"points\""})
    EXPECT_NE(text.find(key), std::string::npos) << key;
}

// ------------------------------------------------------------ timing lint

TEST(CheckTiming, CleanAtEstimatedClock) {
  for (const auto& d : designs::all()) {
    auto r = synth(d.source);
    CheckReport rep;
    checkTiming(r.design, TimingLintOptions{}, rep);
    EXPECT_TRUE(rep.clean()) << d.name << ": " << rep.firstError();
  }
}

TEST(CheckTiming, NegativeSlackFiresOnTightClock) {
  auto r = synth(designs::sqrtSource());
  TimingLintOptions o;
  o.clockNs = 2.0;
  CheckReport rep;
  checkTiming(r.design, o, rep);
  EXPECT_FALSE(rep.clean());
  EXPECT_TRUE(hasDiag(rep, "timing.negative-slack", CheckSeverity::Error));
  // Squeezing the clock that hard also makes the mux chains dominate.
  EXPECT_TRUE(hasDiag(rep, "timing.chain-overrun", CheckSeverity::Warning));
}

TEST(CheckTiming, FiresOnHandCorruptedFixture) {
  // Capture the clean design's clock, then widen a functional unit by
  // hand: both the estimator and the STA engine see the slower unit, so
  // the design no longer closes timing at its own former clock.
  auto r = synth(designs::gcdSource());
  const double clock = r.timing.cycleTime;
  {
    CheckReport rep;
    TimingLintOptions o;
    o.clockNs = clock;
    checkTiming(r.design, o, rep);
    EXPECT_TRUE(rep.clean()) << rep.firstError();
  }
  ASSERT_FALSE(r.design.binding.fus.empty());
  for (FuInstance& fu : r.design.binding.fus) fu.width = 512;
  CheckReport rep;
  TimingLintOptions o;
  o.clockNs = clock;
  checkTiming(r.design, o, rep);
  EXPECT_FALSE(rep.clean());
  EXPECT_TRUE(hasDiag(rep, "timing.negative-slack", CheckSeverity::Error));
}

TEST(CheckTiming, MaxReportedCapsFindings) {
  auto r = synth(designs::ewfSource());
  TimingLintOptions o;
  o.clockNs = 1.0;
  o.maxReported = 2;
  CheckReport rep;
  checkTiming(r.design, o, rep);
  std::size_t negSlack = 0;
  for (const CheckDiag& d : rep.sorted())
    if (d.id == "timing.negative-slack") ++negSlack;
  EXPECT_GE(negSlack, 1u);
  EXPECT_LE(negSlack, 2u);
}

}  // namespace
}  // namespace mphls
