// End-to-end integration tests: full synthesis of every built-in design
// under a matrix of configurations, with the synthesized RTL structure
// verified cycle-accurately against the behavioral specification — the
// strongest form of the paper's Section 4 "design verification" that can
// be run per commit.
#include <gtest/gtest.h>

#include <cmath>

#include "core/designs.h"
#include "core/dse.h"
#include "core/synthesizer.h"
#include "ir/interp.h"
#include "rtl/rtlsim.h"
#include "rtl/verilog.h"

namespace mphls {
namespace {

// --------------------------------------------------- configuration matrix

struct Config {
  const char* name;
  SynthesisOptions opts;
};

std::vector<Config> configMatrix() {
  std::vector<Config> out;
  {
    SynthesisOptions o;
    o.scheduler = SchedulerKind::Serial;
    o.opt = OptLevel::None;
    out.push_back({"serial-noopt", o});
  }
  {
    SynthesisOptions o;
    o.scheduler = SchedulerKind::List;
    o.resources = ResourceLimits::universalSet(1);
    out.push_back({"list-1fu", o});
  }
  {
    SynthesisOptions o;
    o.scheduler = SchedulerKind::List;
    o.resources = ResourceLimits::universalSet(2);
    out.push_back({"list-2fu", o});
  }
  {
    SynthesisOptions o;
    o.scheduler = SchedulerKind::List;
    o.resources = ResourceLimits::universalSet(3);
    o.opt = OptLevel::Aggressive;
    o.fuMethod = FuAllocMethod::GreedyGlobal;
    o.regMethod = RegAllocMethod::Clique;
    out.push_back({"list-3fu-aggressive", o});
  }
  {
    SynthesisOptions o;
    o.scheduler = SchedulerKind::Asap;
    o.resources = ResourceLimits::universalSet(2);
    out.push_back({"asap-2fu", o});
  }
  {
    SynthesisOptions o;
    o.scheduler = SchedulerKind::Freedom;
    out.push_back({"freedom", o});
  }
  {
    SynthesisOptions o;
    o.scheduler = SchedulerKind::Transform;
    o.resources = ResourceLimits::universalSet(2);
    out.push_back({"transform-2fu", o});
  }
  {
    SynthesisOptions o;
    o.scheduler = SchedulerKind::ForceDirected;
    out.push_back({"force-directed", o});
  }
  {
    SynthesisOptions o;
    o.scheduler = SchedulerKind::List;
    o.resources = ResourceLimits::universalSet(2);
    o.fuMethod = FuAllocMethod::Clique;
    o.encoding = StateEncoding::OneHot;
    out.push_back({"list-2fu-clique-onehot", o});
  }
  return out;
}

class EndToEnd
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(EndToEnd, RtlMatchesBehavior) {
  const auto& design = designs::all()[(std::size_t)std::get<0>(GetParam())];
  const Config cfg = configMatrix()[(std::size_t)std::get<1>(GetParam())];

  Synthesizer synth(cfg.opts);
  SynthesisResult r = synth.synthesizeSource(design.source);

  // Primary stimulus.
  EXPECT_EQ(verifyAgainstBehavior(r, design.sampleInputs), "")
      << design.name << " under " << cfg.name;

  // A few derived stimuli (perturbed inputs) for extra coverage.
  std::uint64_t seed = 12345;
  for (int trial = 0; trial < 3; ++trial) {
    auto inputs = design.sampleInputs;
    for (auto& [k, v] : inputs) {
      seed = seed * 6364136223846793005ull + 1442695040888963407ull;
      v = std::max<std::uint64_t>(1, (v + (seed >> 56)) & 0x3FF);
    }
    EXPECT_EQ(verifyAgainstBehavior(r, inputs), "")
        << design.name << " under " << cfg.name << " trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, EndToEnd,
    ::testing::Combine(
        ::testing::Range(0, (int)designs::all().size()),
        ::testing::Range(0, (int)configMatrix().size())),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      std::string n = designs::all()[(std::size_t)std::get<0>(info.param)].name;
      n += "_";
      n += configMatrix()[(std::size_t)std::get<1>(info.param)].name;
      for (auto& c : n)
        if (c == '-') c = '_';
      return n;
    });

// ----------------------------------------------------------- cycle counts

TEST(Integration, RtlCycleCountMatchesScheduleSteps) {
  SynthesisOptions opts;
  opts.resources = ResourceLimits::universalSet(2);
  Synthesizer synth(opts);
  SynthesisResult r = synth.synthesizeSource(designs::sqrtSource());

  RtlSimulator sim(r.design);
  auto rtl = sim.run({{"x", 2048}});
  ASSERT_TRUE(rtl.finished);
  EXPECT_EQ(rtl.cycles, r.latencyFor({{"x", 2048}}));
  // Fig. 2's ten steps.
  EXPECT_EQ(rtl.cycles, 10);
}

TEST(Integration, SqrtComputesSquareRoots) {
  SynthesisOptions opts;
  opts.resources = ResourceLimits::universalSet(2);
  Synthesizer synth(opts);
  SynthesisResult r = synth.synthesizeSource(designs::sqrtSource());
  RtlSimulator sim(r.design);
  for (double xv : {0.0625, 0.125, 0.25, 0.5, 0.75, 1.0}) {
    auto raw = (std::uint64_t)(xv * 4096.0);
    auto res = sim.run({{"x", raw}});
    ASSERT_TRUE(res.finished);
    double got = (double)res.outputs.at("y") / 4096.0;
    EXPECT_NEAR(got, std::sqrt(xv), 0.01) << "x=" << xv;
  }
}

TEST(Integration, GcdComputesGcd) {
  SynthesisOptions opts;
  opts.resources = ResourceLimits::universalSet(1);
  Synthesizer synth(opts);
  SynthesisResult r = synth.synthesizeSource(designs::gcdSource());
  RtlSimulator sim(r.design);
  struct Case {
    std::uint64_t a, b, g;
  };
  for (const Case& c : {Case{1071, 462, 21}, Case{12, 18, 6}, Case{7, 13, 1},
                        Case{100, 0, 100}}) {
    auto res = sim.run({{"a0", c.a}, {"b0", c.b}});
    ASSERT_TRUE(res.finished);
    EXPECT_EQ(res.outputs.at("g"), c.g) << c.a << "," << c.b;
  }
}

TEST(Integration, DiffeqMatchesReferenceEuler) {
  Synthesizer synth{SynthesisOptions{}};
  SynthesisResult r = synth.synthesizeSource(designs::diffeqSource());
  // Reference: the behavioral interpreter is the spec; RTL must agree.
  EXPECT_EQ(verifyAgainstBehavior(
                r, {{"x0", 0}, {"y0", 256}, {"u0", 256}, {"dx", 32},
                    {"a", 256}}),
            "");
}

// ------------------------------------------------------------- estimation

TEST(Integration, MoreUnitsMoreAreaFewerSteps) {
  auto points = exploreResourceSweep(designs::fir8Source(), 4);
  ASSERT_EQ(points.size(), 4u);
  EXPECT_GE(points[0].latencySteps, points[3].latencySteps);
  EXPECT_LT(points[0].area, points[3].area + 1e9);  // areas are positive
  for (const auto& p : points) {
    EXPECT_GT(p.area, 0);
    EXPECT_GT(p.cycleTime, 0);
  }
}

TEST(Integration, ParetoMarksExtremes) {
  auto points = exploreResourceSweep(designs::fir8Source(), 4);
  // The fastest point and the smallest point are Pareto by construction.
  int minLat = INT32_MAX;
  double minArea = 1e18;
  for (const auto& p : points) {
    minLat = std::min(minLat, p.latencySteps);
    minArea = std::min(minArea, p.area);
  }
  for (const auto& p : points) {
    if (p.latencySteps == minLat && p.area <= minArea + 1e-9) {
      EXPECT_TRUE(p.pareto);
    }
  }
  int paretoCount = 0;
  for (const auto& p : points) paretoCount += p.pareto ? 1 : 0;
  EXPECT_GE(paretoCount, 1);
}

TEST(Integration, ChippeStopsWhenTargetMet) {
  auto probe = exploreResourceSweep(designs::fir8Source(), 4);
  int target = probe[2].latencySteps;  // achievable with 3 FUs
  auto points = chippeIterate(designs::fir8Source(), target, 8);
  ASSERT_FALSE(points.empty());
  EXPECT_LE(points.back().latencySteps, target);
  EXPECT_LE((int)points.size(), 4);
}

TEST(Integration, TimeSweepTradesAreaForTime) {
  auto points = exploreTimeSweep(designs::fir8Source(), 3);
  ASSERT_EQ(points.size(), 4u);
  // Longer schedules should never need more functional-unit area.
  EXPECT_LE(points.back().area, points.front().area + 1e-9);
}

// --------------------------------------------------------------- verilog

TEST(Integration, VerilogEmitsWellFormedModule) {
  SynthesisOptions opts;
  opts.resources = ResourceLimits::universalSet(2);
  Synthesizer synth(opts);
  SynthesisResult r = synth.synthesizeSource(designs::sqrtSource());
  std::string v = emitVerilog(r.design);
  EXPECT_NE(v.find("module sqrt"), std::string::npos);
  EXPECT_NE(v.find("endmodule"), std::string::npos);
  EXPECT_NE(v.find("input wire clk"), std::string::npos);
  EXPECT_NE(v.find("out_y"), std::string::npos);
  EXPECT_NE(v.find("always @(posedge clk)"), std::string::npos);
  // begin/end balance.
  std::size_t begins = 0, ends = 0, pos = 0;
  while ((pos = v.find("begin", pos)) != std::string::npos) {
    ++begins;
    pos += 5;
  }
  pos = 0;
  while ((pos = v.find("end", pos)) != std::string::npos) {
    ++ends;
    pos += 3;
  }
  // "end" also matches "endcase"/"endmodule": 2 endcase + 1 endmodule.
  EXPECT_EQ(ends, begins + 3);
}

TEST(Integration, VerilogForEveryDesign) {
  for (const auto& d : designs::all()) {
    SynthesisOptions opts;
    opts.resources = ResourceLimits::universalSet(2);
    Synthesizer synth(opts);
    SynthesisResult r = synth.synthesizeSource(d.source);
    std::string v = emitVerilog(r.design);
    EXPECT_NE(v.find(std::string("module ") + d.name), std::string::npos)
        << d.name;
  }
}

}  // namespace
}  // namespace mphls
