// Unit tests for the BDL frontend: lexer, parser, lowering, diagnostics,
// and behavioral correctness of compiled programs via the interpreter.
#include <gtest/gtest.h>

#include <cmath>

#include "ir/interp.h"
#include "ir/verify.h"
#include "lang/frontend.h"
#include "lang/lexer.h"
#include "lang/parser.h"

namespace mphls {
namespace {

// ------------------------------------------------------------------- lexer

TEST(Lexer, BasicTokens) {
  DiagEngine d;
  Lexer lx("proc f ( ) { x = 1 + 0x10; }", d);
  auto toks = lx.tokenize();
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(toks[0].kind, Tok::KwProc);
  EXPECT_EQ(toks[1].kind, Tok::Ident);
  EXPECT_EQ(toks[1].text, "f");
  EXPECT_EQ(toks.back().kind, Tok::End);
}

TEST(Lexer, NumberBases) {
  DiagEngine d;
  Lexer lx("10 0x1F 0b101", d);
  auto toks = lx.tokenize();
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(toks[0].number, 10u);
  EXPECT_EQ(toks[1].number, 0x1Fu);
  EXPECT_EQ(toks[2].number, 5u);
}

TEST(Lexer, CommentsSkipped) {
  DiagEngine d;
  Lexer lx("a # line comment\n b // c++ style\n /* block */ c", d);
  auto toks = lx.tokenize();
  ASSERT_TRUE(d.ok());
  ASSERT_EQ(toks.size(), 4u);  // a b c <eof>
  EXPECT_EQ(toks[0].text, "a");
  EXPECT_EQ(toks[1].text, "b");
  EXPECT_EQ(toks[2].text, "c");
}

TEST(Lexer, TwoCharOperators) {
  DiagEngine d;
  Lexer lx("<< >> <= >= == != && ||", d);
  auto toks = lx.tokenize();
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(toks[0].kind, Tok::Shl);
  EXPECT_EQ(toks[1].kind, Tok::Shr);
  EXPECT_EQ(toks[2].kind, Tok::Le);
  EXPECT_EQ(toks[3].kind, Tok::Ge);
  EXPECT_EQ(toks[4].kind, Tok::Eq);
  EXPECT_EQ(toks[5].kind, Tok::Ne);
  EXPECT_EQ(toks[6].kind, Tok::AmpAmp);
  EXPECT_EQ(toks[7].kind, Tok::PipePipe);
}

TEST(Lexer, ReportsBadCharacter) {
  DiagEngine d;
  Lexer lx("a $ b", d);
  (void)lx.tokenize();
  EXPECT_FALSE(d.ok());
}

TEST(Lexer, TracksLineNumbers) {
  DiagEngine d;
  Lexer lx("a\nbb\n  ccc", d);
  auto toks = lx.tokenize();
  EXPECT_EQ(toks[0].loc.line, 1);
  EXPECT_EQ(toks[1].loc.line, 2);
  EXPECT_EQ(toks[2].loc.line, 3);
  EXPECT_EQ(toks[2].loc.column, 3);
}

// ------------------------------------------------------------------ parser

TEST(Parser, ProcWithParams) {
  DiagEngine d;
  Lexer lx("proc f(in a: uint<8>, out y: int<16>) { y = a; }", d);
  Parser p(lx.tokenize(), d);
  auto design = p.parseDesign();
  ASSERT_TRUE(d.ok()) << d.summary();
  ASSERT_EQ(design.procs.size(), 1u);
  const auto& f = design.procs[0];
  EXPECT_EQ(f.name, "f");
  ASSERT_EQ(f.params.size(), 2u);
  EXPECT_TRUE(f.params[0].isInput);
  EXPECT_EQ(f.params[0].type.width, 8);
  EXPECT_FALSE(f.params[0].type.isSigned);
  EXPECT_FALSE(f.params[1].isInput);
  EXPECT_TRUE(f.params[1].type.isSigned);
}

TEST(Parser, Precedence) {
  DiagEngine d;
  Lexer lx("proc f(out y: int) { y = 1 + 2 * 3; }", d);
  Parser p(lx.tokenize(), d);
  auto design = p.parseDesign();
  ASSERT_TRUE(d.ok());
  const auto& assign = *design.procs[0].body[0];
  ASSERT_EQ(assign.kind, ast::Stmt::Kind::Assign);
  // Root must be '+', with '*' as the right child.
  EXPECT_EQ(assign.rhs->binOp, ast::BinOp::Add);
  EXPECT_EQ(assign.rhs->children[1]->binOp, ast::BinOp::Mul);
}

TEST(Parser, ControlFlowForms) {
  DiagEngine d;
  const char* src = R"(
    proc f(in a: uint<8>, out y: uint<8>) {
      var i: uint<4>;
      i = 0;
      if (a > 4) { y = 1; } else if (a > 2) { y = 2; } else { y = 3; }
      while (i < 4) { i = i + 1; }
      do { i = i - 1; } until (i == 0);
    }
  )";
  Lexer lx(src, d);
  Parser p(lx.tokenize(), d);
  auto design = p.parseDesign();
  ASSERT_TRUE(d.ok()) << d.summary();
  ASSERT_EQ(design.procs[0].body.size(), 5u);
  EXPECT_EQ(design.procs[0].body[2]->kind, ast::Stmt::Kind::If);
  EXPECT_EQ(design.procs[0].body[3]->kind, ast::Stmt::Kind::While);
  EXPECT_EQ(design.procs[0].body[4]->kind, ast::Stmt::Kind::DoUntil);
}

TEST(Parser, ReportsSyntaxError) {
  DiagEngine d;
  Lexer lx("proc f( { }", d);
  Parser p(lx.tokenize(), d);
  (void)p.parseDesign();
  EXPECT_FALSE(d.ok());
}

TEST(Parser, TernaryAndCast) {
  DiagEngine d;
  Lexer lx("proc f(in a: uint<8>, out y: uint<16>) {"
           "  y = a > 4 ? zext<16>(a) : trunc<16>(a * a);"
           "}", d);
  Parser p(lx.tokenize(), d);
  auto design = p.parseDesign();
  ASSERT_TRUE(d.ok()) << d.summary();
  EXPECT_EQ(design.procs[0].body[0]->rhs->kind, ast::Expr::Kind::Ternary);
}

// ---------------------------------------------------------------- lowering

TEST(Lower, SimpleDatapath) {
  Function fn = compileBdlOrThrow(
      "proc f(in a: uint<8>, in b: uint<8>, out y: uint<8>) { y = a * b + 1; }");
  EXPECT_EQ(verifyFunction(fn), "");
  Interpreter in(fn);
  EXPECT_EQ(in.run({{"a", 6}, {"b", 7}}).outputs.at("y"), 43u);
}

TEST(Lower, WidthTruncationOnAssign) {
  Function fn = compileBdlOrThrow(
      "proc f(in a: uint<8>, out y: uint<4>) { y = a + 1; }");
  Interpreter in(fn);
  EXPECT_EQ(in.run({{"a", 0xFF}}).outputs.at("y"), 0u);
}

TEST(Lower, SignedArithmetic) {
  Function fn = compileBdlOrThrow(
      "proc f(in a: int<8>, in b: int<8>, out y: int<8>) { y = a / b; }");
  Interpreter in(fn);
  // -8 / 2 == -4 (0xFC as 8-bit).
  EXPECT_EQ(in.run({{"a", 0xF8}, {"b", 2}}).outputs.at("y"), 0xFCu);
}

TEST(Lower, MixedSignednessIsUnsigned) {
  Function fn = compileBdlOrThrow(
      "proc f(in a: uint<8>, in b: int<8>, out y: bool) { y = a > b; }");
  Interpreter in(fn);
  // 200 > (-1 as unsigned 255)? unsigned compare: 200 > 255 is false.
  EXPECT_EQ(in.run({{"a", 200}, {"b", 0xFF}}).outputs.at("y"), 0u);
}

TEST(Lower, SignedComparisonUsesSign) {
  Function fn = compileBdlOrThrow(
      "proc f(in a: int<8>, in b: int<8>, out y: bool) { y = a > b; }");
  Interpreter in(fn);
  EXPECT_EQ(in.run({{"a", 200}, {"b", 0xFF}}).outputs.at("y"), 0u);  // -56 > -1 ? no
  EXPECT_EQ(in.run({{"a", 1}, {"b", 0xFF}}).outputs.at("y"), 1u);    // 1 > -1
}

TEST(Lower, ShiftByConstantIsFree) {
  Function fn = compileBdlOrThrow(
      "proc f(in a: uint<8>, out y: uint<8>) { y = a >> 1; }");
  bool sawConstShift = false;
  for (const auto& blk : fn.blocks())
    for (OpId oid : blk.ops)
      if (fn.op(oid).kind == OpKind::ShrConst) sawConstShift = true;
  EXPECT_TRUE(sawConstShift);
  Interpreter in(fn);
  EXPECT_EQ(in.run({{"a", 8}}).outputs.at("y"), 4u);
}

TEST(Lower, ArithmeticShiftForSigned) {
  Function fn = compileBdlOrThrow(
      "proc f(in a: int<8>, out y: int<8>) { y = a >> 2; }");
  Interpreter in(fn);
  EXPECT_EQ(in.run({{"a", 0x80}}).outputs.at("y"), 0xE0u);  // -128>>2 = -32
}

TEST(Lower, IfElseJoins) {
  Function fn = compileBdlOrThrow(
      "proc f(in a: uint<8>, out y: uint<8>) {"
      "  if (a > 10) { y = 1; } else { y = 2; }"
      "}");
  Interpreter in(fn);
  EXPECT_EQ(in.run({{"a", 11}}).outputs.at("y"), 1u);
  EXPECT_EQ(in.run({{"a", 10}}).outputs.at("y"), 2u);
}

TEST(Lower, WhileLoop) {
  Function fn = compileBdlOrThrow(
      "proc f(in n: uint<8>, out y: uint<16>) {"
      "  var acc: uint<16>; var i: uint<8>;"
      "  acc = 0; i = 0;"
      "  while (i < n) { acc = acc + zext<16>(i); i = i + 1; }"
      "  y = acc;"
      "}");
  Interpreter in(fn);
  EXPECT_EQ(in.run({{"n", 5}}).outputs.at("y"), 10u);  // 0+1+2+3+4
  EXPECT_EQ(in.run({{"n", 0}}).outputs.at("y"), 0u);
}

TEST(Lower, DoUntilRunsAtLeastOnce) {
  Function fn = compileBdlOrThrow(
      "proc f(out y: uint<8>) {"
      "  var i: uint<8>; i = 9;"
      "  do { i = i + 1; } until (true);"
      "  y = i;"
      "}");
  Interpreter in(fn);
  EXPECT_EQ(in.run({}).outputs.at("y"), 10u);
}

TEST(Lower, OutParamReadable) {
  Function fn = compileBdlOrThrow(
      "proc f(out y: uint<8>) { y = 3; y = y + y; }");
  Interpreter in(fn);
  EXPECT_EQ(in.run({}).outputs.at("y"), 6u);
}

TEST(Lower, ProcedureInlining) {
  Function fn = compileBdlOrThrow(
      "proc square(in v: uint<8>, out r: uint<16>) { r = zext<16>(v) * zext<16>(v); }"
      "proc main(in a: uint<8>, out y: uint<16>) {"
      "  var t: uint<16>;"
      "  square(a, t);"
      "  y = t + 1;"
      "}");
  EXPECT_EQ(fn.name(), "main");
  Interpreter in(fn);
  EXPECT_EQ(in.run({{"a", 9}}).outputs.at("y"), 82u);
}

TEST(Lower, NestedCallsInline) {
  Function fn = compileBdlOrThrow(
      "proc add1(in v: uint<8>, out r: uint<8>) { r = v + 1; }"
      "proc add2(in v: uint<8>, out r: uint<8>) {"
      "  var t: uint<8>; add1(v, t); add1(t, r);"
      "}"
      "proc main(in a: uint<8>, out y: uint<8>) { add2(a, y); }");
  Interpreter in(fn);
  EXPECT_EQ(in.run({{"a", 5}}).outputs.at("y"), 7u);
}

TEST(Lower, RecursionRejected) {
  DiagEngine d;
  auto fn = compileBdl(
      "proc f(in a: uint<8>, out y: uint<8>) { f(a, y); }", d);
  EXPECT_FALSE(fn.has_value());
  EXPECT_FALSE(d.ok());
}

TEST(Lower, UndeclaredNameRejected) {
  DiagEngine d;
  auto fn = compileBdl("proc f(out y: uint<8>) { y = nope; }", d);
  EXPECT_FALSE(fn.has_value());
}

TEST(Lower, AssignToInputRejected) {
  DiagEngine d;
  auto fn = compileBdl("proc f(in a: uint<8>) { a = 1; }", d);
  EXPECT_FALSE(fn.has_value());
}

TEST(Lower, CallArityChecked) {
  DiagEngine d;
  auto fn = compileBdl(
      "proc g(in a: uint<8>, out r: uint<8>) { r = a; }"
      "proc main(in a: uint<8>, out y: uint<8>) { g(a); }", d);
  EXPECT_FALSE(fn.has_value());
}

TEST(Lower, OutArgMustBeVariable) {
  DiagEngine d;
  auto fn = compileBdl(
      "proc g(out r: uint<8>) { r = 1; }"
      "proc main(out y: uint<8>) { g(y + 1); }", d);
  EXPECT_FALSE(fn.has_value());
}

TEST(Lower, TernarySelect) {
  Function fn = compileBdlOrThrow(
      "proc f(in a: uint<8>, in b: uint<8>, out y: uint<8>) {"
      "  y = a < b ? a : b;"
      "}");
  Interpreter in(fn);
  EXPECT_EQ(in.run({{"a", 3}, {"b", 9}}).outputs.at("y"), 3u);
  EXPECT_EQ(in.run({{"a", 9}, {"b", 3}}).outputs.at("y"), 3u);
}

TEST(Lower, LogicalOps) {
  Function fn = compileBdlOrThrow(
      "proc f(in a: uint<8>, in b: uint<8>, out y: bool) {"
      "  y = (a > 1 && b > 1) || !(a == b);"
      "}");
  Interpreter in(fn);
  EXPECT_EQ(in.run({{"a", 2}, {"b", 2}}).outputs.at("y"), 1u);
  EXPECT_EQ(in.run({{"a", 1}, {"b", 1}}).outputs.at("y"), 0u);
  EXPECT_EQ(in.run({{"a", 0}, {"b", 1}}).outputs.at("y"), 1u);
}

TEST(Lower, TopSelection) {
  DiagEngine d;
  auto fn = compileBdl(
      "proc first(out y: uint<8>) { y = 1; }"
      "proc second(out y: uint<8>) { y = 2; }", d, "first");
  ASSERT_TRUE(fn.has_value());
  EXPECT_EQ(fn->name(), "first");
  // Default: last proc.
  DiagEngine d2;
  auto fn2 = compileBdl(
      "proc first(out y: uint<8>) { y = 1; }"
      "proc second(out y: uint<8>) { y = 2; }", d2);
  ASSERT_TRUE(fn2.has_value());
  EXPECT_EQ(fn2->name(), "second");
}

// The paper's Fig. 1 square-root program, as BDL. Fixed point with 12
// fraction bits; X in <1/16, 1>. Checks Newton's method convergence.
TEST(Lower, SqrtNewtonBehaves) {
  const char* src = R"(
    # Y := 0.222222 + 0.888889 * X; 4 Newton iterations (paper Fig. 1)
    proc sqrt(in x: uint<16>, out y: uint<16>) {
      var i: uint<3>;
      var t: uint<32>;
      t = zext<32>(x) * 3641;          # 0.888889 * 2^12
      y = trunc<16>(t >> 12) + 910;    # + 0.222222 * 2^12
      i = 0;
      do {
        y = (y + trunc<16>((zext<32>(x) << 12) / zext<32>(y))) >> 1;
        i = i + 1;
      } until (i > 3);
    }
  )";
  Function fn = compileBdlOrThrow(src);
  Interpreter in(fn);
  for (double xv : {0.0625, 0.1, 0.25, 0.5, 0.9, 1.0}) {
    std::uint64_t raw = static_cast<std::uint64_t>(xv * 4096.0);
    auto res = in.run({{"x", raw}});
    ASSERT_TRUE(res.finished);
    double got = static_cast<double>(res.outputs.at("y")) / 4096.0;
    EXPECT_NEAR(got, std::sqrt(xv), 0.01) << "x=" << xv;
  }
}

}  // namespace
}  // namespace mphls
