// Property-based tests.
//
// A deterministic random-program generator produces BDL designs with
// nested control flow and mixed-width arithmetic; for every seed the suite
// checks the pipeline-wide invariants the paper's Section 4 calls "design
// verification":
//   - both optimization pipelines preserve the interpreter's behavior;
//   - every scheduler produces dependence- and resource-valid schedules;
//   - register allocation respects lifetimes and left edge is optimal;
//   - the synthesized RTL equals the behavioral spec cycle-accurately;
//   - SOP minimization is functionally exact;
//   - clique covers are valid and the greedy heuristic is bounded by exact.
#include <gtest/gtest.h>

#include <sstream>

#include "alloc/clique.h"
#include "alloc/lifetime.h"
#include "alloc/reg_alloc.h"
#include "core/synthesizer.h"
#include "ctrl/sop.h"
#include "ir/interp.h"
#include "lang/frontend.h"
#include "opt/pass.h"
#include "sched/asap.h"
#include "sched/bnb.h"
#include "sched/force_directed.h"
#include "sched/freedom.h"
#include "sched/list_sched.h"
#include "sched/sched_util.h"
#include "sched/transform_sched.h"

namespace mphls {
namespace {

// ------------------------------------------------------------- generator

class Rng {
 public:
  explicit Rng(std::uint64_t seed) : s_(seed * 2654435761u + 1) {}
  std::uint64_t next() {
    s_ ^= s_ << 13;
    s_ ^= s_ >> 7;
    s_ ^= s_ << 17;
    return s_;
  }
  std::size_t below(std::size_t n) { return (std::size_t)(next() % n); }
  bool chance(int percent) { return below(100) < (std::size_t)percent; }

 private:
  std::uint64_t s_;
};

/// Generates a random but well-formed BDL program. All variables are
/// initialized before use; loops are bounded counters; every output is
/// assigned on every path (by assigning all outputs up front).
class ProgramGen {
 public:
  explicit ProgramGen(std::uint64_t seed) : rng_(seed) {}

  struct Result {
    std::string source;
    std::vector<std::string> inputs;
  };

  Result generate() {
    std::ostringstream out;
    int nIn = 2 + (int)rng_.below(3);
    int nOut = 1 + (int)rng_.below(2);
    int nVar = 2 + (int)rng_.below(4);

    out << "proc fuzz(";
    Result res;
    for (int i = 0; i < nIn; ++i) {
      std::string name = "in" + std::to_string(i);
      ins_.push_back({name, randWidth()});
      res.inputs.push_back(name);
      out << (i ? ", " : "") << "in " << name << ": uint<" << ins_.back().width
          << ">";
    }
    for (int i = 0; i < nOut; ++i) {
      std::string name = "out" + std::to_string(i);
      outs_.push_back({name, randWidth()});
      out << ", out " << name << ": uint<" << outs_.back().width << ">";
    }
    out << ") {\n";

    for (int i = 0; i < nVar; ++i) {
      std::string name = "v" + std::to_string(i);
      vars_.push_back({name, randWidth()});
      out << "  var " << name << ": uint<" << vars_.back().width << ">;\n";
      out << "  " << name << " = " << expr(1) << ";\n";
    }
    // Outputs readable on all paths.
    for (const auto& o : outs_) out << "  " << o.name << " = " << expr(1)
                                    << ";\n";

    int nStmt = 3 + (int)rng_.below(6);
    for (int i = 0; i < nStmt; ++i) stmt(out, 0);

    out << "}\n";
    res.source = out.str();
    return res;
  }

 private:
  struct Sym {
    std::string name;
    int width;
  };
  Rng rng_;
  std::vector<Sym> ins_, outs_, vars_;
  int loopCounter_ = 0;

  int randWidth() {
    const int widths[] = {4, 8, 12, 16, 24, 32};
    return widths[rng_.below(6)];
  }

  std::string readable() {
    std::size_t total = ins_.size() + outs_.size() + vars_.size();
    std::size_t k = rng_.below(total);
    if (k < ins_.size()) return ins_[k].name;
    k -= ins_.size();
    if (k < outs_.size()) return outs_[k].name;
    return vars_[k - outs_.size()].name;
  }

  std::string writable() {
    std::size_t total = outs_.size() + vars_.size();
    std::size_t k = rng_.below(total);
    if (k < outs_.size()) return outs_[k].name;
    return vars_[k - outs_.size()].name;
  }

  std::string expr(int depth) {
    if (depth >= 3 || rng_.chance(35)) {
      // Leaf.
      if (rng_.chance(30)) return std::to_string(rng_.below(1000));
      return readable();
    }
    switch (rng_.below(10)) {
      case 0:
        return "(" + expr(depth + 1) + " + " + expr(depth + 1) + ")";
      case 1:
        return "(" + expr(depth + 1) + " - " + expr(depth + 1) + ")";
      case 2:
        return "(" + expr(depth + 1) + " * " + expr(depth + 1) + ")";
      case 3:
        return "(" + expr(depth + 1) + " / " + expr(depth + 1) + ")";
      case 4:
        return "(" + expr(depth + 1) + " ^ " + expr(depth + 1) + ")";
      case 5:
        return "(" + expr(depth + 1) + " & " + expr(depth + 1) + ")";
      case 6:
        return "(" + expr(depth + 1) + " >> " +
               std::to_string(1 + rng_.below(3)) + ")";
      case 7:
        return "(" + expr(depth + 1) + " % " + expr(depth + 1) + ")";
      case 8:
        return "(" + expr(depth + 1) + (rng_.chance(50) ? " < " : " >= ") +
               expr(depth + 1) + " ? " + expr(depth + 1) + " : " +
               expr(depth + 1) + ")";
      default:
        return "zext<32>(" + expr(depth + 1) + ")";
    }
  }

  std::string cond(int depth) {
    return "(" + expr(depth + 1) +
           (rng_.chance(50) ? " != " : " > ") + expr(depth + 1) + ")";
  }

  void stmt(std::ostringstream& out, int depth) {
    int roll = (int)rng_.below(100);
    std::string pad((std::size_t)(2 * depth + 2), ' ');
    if (roll < 55 || depth >= 2) {
      out << pad << writable() << " = " << expr(0) << ";\n";
    } else if (roll < 80) {
      out << pad << "if " << cond(0) << " {\n";
      int n = 1 + (int)rng_.below(2);
      for (int i = 0; i < n; ++i) stmt(out, depth + 1);
      if (rng_.chance(60)) {
        out << pad << "} else {\n";
        for (int i = 0; i < n; ++i) stmt(out, depth + 1);
      }
      out << pad << "}\n";
    } else {
      // Bounded counted loop.
      std::string c = "k" + std::to_string(loopCounter_++);
      int trip = 2 + (int)rng_.below(4);
      out << pad << "var " << c << ": uint<4>;\n";
      out << pad << c << " = 0;\n";
      out << pad << "do {\n";
      int n = 1 + (int)rng_.below(2);
      for (int i = 0; i < n; ++i) stmt(out, depth + 1);
      out << pad << "  " << c << " = " << c << " + 1;\n";
      out << pad << "} until (" << c << " == " << trip << ");\n";
    }
  }
};

std::map<std::string, std::uint64_t> randomInputs(
    const std::vector<std::string>& names, std::uint64_t seed, int trial) {
  Rng rng(seed * 131 + (std::uint64_t)trial);
  std::map<std::string, std::uint64_t> in;
  for (const auto& n : names) {
    std::uint64_t v = rng.next();
    if (trial == 0) v = 0;
    if (trial == 1) v = ~0ull;
    in[n] = v;
  }
  return in;
}

// ----------------------------------------------------- pipeline properties

class FuzzPipeline : public ::testing::TestWithParam<int> {};

TEST_P(FuzzPipeline, OptimizationPreservesBehavior) {
  auto gen = ProgramGen((std::uint64_t)GetParam()).generate();
  DiagEngine diags;
  auto fnOpt = compileBdl(gen.source, diags);
  ASSERT_TRUE(fnOpt.has_value()) << diags.summary() << "\n" << gen.source;
  Function orig = std::move(*fnOpt);
  Function std1 = orig.clone();
  Function aggr = orig.clone();
  PassManager::standardPipeline().run(std1);
  PassManager::aggressivePipeline().run(aggr);

  Interpreter i0(orig), i1(std1), i2(aggr);
  for (int trial = 0; trial < 6; ++trial) {
    auto in = randomInputs(gen.inputs, (std::uint64_t)GetParam(), trial);
    auto r0 = i0.run(in);
    auto r1 = i1.run(in);
    auto r2 = i2.run(in);
    ASSERT_TRUE(r0.finished && r1.finished && r2.finished) << gen.source;
    EXPECT_EQ(r0.outputs, r1.outputs) << "standard pipeline\n" << gen.source;
    EXPECT_EQ(r0.outputs, r2.outputs) << "aggressive pipeline\n" << gen.source;
  }
}

TEST_P(FuzzPipeline, EverySchedulerProducesValidSchedules) {
  auto gen = ProgramGen((std::uint64_t)GetParam()).generate();
  Function fn = compileBdlOrThrow(gen.source);
  optimize(fn);

  for (const auto& blk : fn.blocks()) {
    if (blk.ops.empty()) continue;
    BlockDeps deps(fn, blk);
    auto limits = ResourceLimits::universalSet(1 + (GetParam() % 3));

    EXPECT_EQ(validateBlockSchedule(deps, serialSchedule(deps)), "");
    EXPECT_EQ(validateBlockSchedule(deps, asapResourceSchedule(deps, limits),
                                    limits),
              "");
    for (auto p : {ListPriority::PathLength, ListPriority::Mobility,
                   ListPriority::Urgency}) {
      EXPECT_EQ(
          validateBlockSchedule(deps, listSchedule(deps, limits, p), limits),
          "")
          << listPriorityName(p);
    }
    EXPECT_EQ(validateBlockSchedule(deps, forceDirectedSchedule(deps, 0)), "");
    EXPECT_EQ(validateBlockSchedule(deps, freedomSchedule(deps).schedule), "");
    EXPECT_EQ(
        validateBlockSchedule(
            deps, transformationalSchedule(deps, limits).schedule, limits),
        "");
  }
}

TEST_P(FuzzPipeline, ListNeverBeatenByAsapAndBnbNeverWorse) {
  auto gen = ProgramGen((std::uint64_t)GetParam()).generate();
  Function fn = compileBdlOrThrow(gen.source);
  optimize(fn);
  auto limits = ResourceLimits::universalSet(2);
  for (const auto& blk : fn.blocks()) {
    if (blk.ops.empty()) continue;
    BlockDeps deps(fn, blk);
    auto ls = listSchedule(deps, limits, ListPriority::PathLength);
    auto br = branchBoundSchedule(deps, limits, 200000);
    EXPECT_LE(br.schedule.numSteps, ls.numSteps) << blk.name;
  }
}

TEST_P(FuzzPipeline, RegisterAllocationValidAndLeftEdgeOptimal) {
  auto gen = ProgramGen((std::uint64_t)GetParam()).generate();
  Function fn = compileBdlOrThrow(gen.source);
  optimize(fn);
  auto limits = ResourceLimits::universalSet(2);
  Schedule sched = scheduleFunction(fn, [&](const BlockDeps& d) {
    return listSchedule(d, limits, ListPriority::PathLength);
  });
  LifetimeInfo lt = computeLifetimes(fn, sched);
  for (auto m : {RegAllocMethod::LeftEdge, RegAllocMethod::Clique,
                 RegAllocMethod::Naive}) {
    auto regs = allocateRegisters(lt, m);
    EXPECT_EQ(validateRegAssignment(lt, regs), "");
  }
  EXPECT_EQ(allocateRegisters(lt, RegAllocMethod::LeftEdge).numRegs,
            lt.maxOverlap());
}

TEST_P(FuzzPipeline, RtlMatchesBehaviorEndToEnd) {
  auto gen = ProgramGen((std::uint64_t)GetParam()).generate();
  SynthesisOptions opts;
  opts.scheduler = SchedulerKind::List;
  opts.resources = ResourceLimits::universalSet(1 + (GetParam() % 3));
  opts.opt = (GetParam() % 2) ? OptLevel::Aggressive : OptLevel::Standard;
  opts.fuMethod = (GetParam() % 3 == 0) ? FuAllocMethod::Clique
                                        : FuAllocMethod::GreedyLocal;
  Synthesizer synth(opts);
  SynthesisResult r = synth.synthesizeSource(gen.source);
  for (int trial = 0; trial < 4; ++trial) {
    auto in = randomInputs(gen.inputs, (std::uint64_t)GetParam(), trial);
    EXPECT_EQ(verifyAgainstBehavior(r, in), "") << gen.source;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzPipeline, ::testing::Range(1, 33));

// ----------------------------------------------------- structure properties

class FuzzStructures : public ::testing::TestWithParam<int> {};

TEST_P(FuzzStructures, SopMinimizationIsExact) {
  Rng rng((std::uint64_t)GetParam() * 977);
  SopCover cover;
  cover.numInputs = 3 + (int)rng.below(5);   // up to 7 inputs
  cover.numOutputs = 1 + (int)rng.below(4);
  int nCubes = 3 + (int)rng.below(12);
  for (int c = 0; c < nCubes; ++c) {
    Cube cube;
    for (int i = 0; i < cover.numInputs; ++i)
      cube.in.push_back((std::uint8_t)rng.below(3));  // 0/1/dc
    bool any = false;
    for (int o = 0; o < cover.numOutputs; ++o) {
      std::uint8_t b = rng.chance(50) ? 1 : 0;
      cube.out.push_back(b);
      any = any || b;
    }
    if (!any) cube.out[0] = 1;
    cover.cubes.push_back(std::move(cube));
  }
  SopCover min = minimizeCover(cover);
  EXPECT_TRUE(coversEquivalent(cover, min));
  EXPECT_LE(min.termCount(), cover.termCount());
}

TEST_P(FuzzStructures, CliqueCoversValidAndGreedyBounded) {
  Rng rng((std::uint64_t)GetParam() * 1543);
  std::size_t n = 4 + rng.below(9);  // up to 12 nodes (exact feasible)
  CompatGraph g(n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      if (rng.chance(45)) g.addEdge(i, j);
  auto greedy = cliquePartition(g);
  auto exact = cliquePartitionExact(g);
  EXPECT_TRUE(coverIsValid(g, greedy));
  EXPECT_TRUE(coverIsValid(g, exact));
  EXPECT_GE(greedy.count, exact.count);
  // Exact is at most n and at least the trivial bound.
  EXPECT_LE(exact.count, n);
}

TEST_P(FuzzStructures, LeftEdgeOptimalOnRandomIntervals) {
  Rng rng((std::uint64_t)GetParam() * 3571);
  LifetimeInfo lt;
  lt.totalSteps = 40;
  std::size_t n = 5 + rng.below(30);
  for (std::size_t i = 0; i < n; ++i) {
    StorageItem item;
    item.kind = StorageItem::Kind::Temp;
    item.width = 8;
    int b = (int)rng.below(35);
    item.live = {b, b + 1 + (int)rng.below(8)};
    item.name = "i" + std::to_string(i);
    lt.items.push_back(item);
  }
  auto regs = allocateRegisters(lt, RegAllocMethod::LeftEdge);
  EXPECT_EQ(validateRegAssignment(lt, regs), "");
  EXPECT_EQ(regs.numRegs, lt.maxOverlap());
  auto clique = allocateRegisters(lt, RegAllocMethod::Clique);
  EXPECT_EQ(validateRegAssignment(lt, clique), "");
  EXPECT_GE(clique.numRegs, regs.numRegs);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzStructures, ::testing::Range(1, 41));

}  // namespace
}  // namespace mphls
