// Property-based tests.
//
// A deterministic random-program generator produces BDL designs with
// nested control flow and mixed-width arithmetic; for every seed the suite
// checks the pipeline-wide invariants the paper's Section 4 calls "design
// verification":
//   - both optimization pipelines preserve the interpreter's behavior;
//   - every scheduler produces dependence- and resource-valid schedules;
//   - register allocation respects lifetimes and left edge is optimal;
//   - the synthesized RTL equals the behavioral spec cycle-accurately;
//   - SOP minimization is functionally exact;
//   - clique covers are valid and the greedy heuristic is bounded by exact.
#include <gtest/gtest.h>

#include "alloc/clique.h"
#include "alloc/lifetime.h"
#include "alloc/reg_alloc.h"
#include "core/synthesizer.h"
#include "ctrl/sop.h"
#include "fuzz/bdl_gen.h"
#include "ir/interp.h"
#include "lang/frontend.h"
#include "opt/pass.h"
#include "sched/asap.h"
#include "sched/bnb.h"
#include "sched/force_directed.h"
#include "sched/freedom.h"
#include "sched/list_sched.h"
#include "sched/sched_util.h"
#include "sched/transform_sched.h"

namespace mphls {
namespace {

// ------------------------------------------------------------- generator
//
// The generator lives in src/fuzz/bdl_gen.* (shared with `mphls fuzz`); it
// is the same deterministic splitmix64-seeded program source, so any seed
// that fails here can be replayed and reduced with the fuzz CLI.

using fuzz::Rng;
using fuzz::randomInputs;

struct GenCase {
  std::string source;
  std::vector<std::string> inputs;
};

GenCase genCase(std::uint64_t seed) {
  fuzz::GenProgram p = fuzz::generateProgram(seed);
  return {p.render(), p.inputNames()};
}

// ----------------------------------------------------- pipeline properties

class FuzzPipeline : public ::testing::TestWithParam<int> {};

TEST_P(FuzzPipeline, OptimizationPreservesBehavior) {
  GenCase gen = genCase((std::uint64_t)GetParam());
  DiagEngine diags;
  auto fnOpt = compileBdl(gen.source, diags);
  ASSERT_TRUE(fnOpt.has_value()) << diags.summary() << "\n" << gen.source;
  Function orig = std::move(*fnOpt);
  Function std1 = orig.clone();
  Function aggr = orig.clone();
  PassManager::standardPipeline().run(std1);
  PassManager::aggressivePipeline().run(aggr);

  Interpreter i0(orig), i1(std1), i2(aggr);
  for (int trial = 0; trial < 6; ++trial) {
    auto in = randomInputs(gen.inputs, (std::uint64_t)GetParam(), trial);
    auto r0 = i0.run(in);
    auto r1 = i1.run(in);
    auto r2 = i2.run(in);
    ASSERT_TRUE(r0.finished && r1.finished && r2.finished) << gen.source;
    EXPECT_EQ(r0.outputs, r1.outputs) << "standard pipeline\n" << gen.source;
    EXPECT_EQ(r0.outputs, r2.outputs) << "aggressive pipeline\n" << gen.source;
  }
}

TEST_P(FuzzPipeline, EverySchedulerProducesValidSchedules) {
  GenCase gen = genCase((std::uint64_t)GetParam());
  Function fn = compileBdlOrThrow(gen.source);
  optimize(fn);

  for (const auto& blk : fn.blocks()) {
    if (blk.ops.empty()) continue;
    BlockDeps deps(fn, blk);
    auto limits = ResourceLimits::universalSet(1 + (GetParam() % 3));

    EXPECT_EQ(validateBlockSchedule(deps, serialSchedule(deps)), "");
    EXPECT_EQ(validateBlockSchedule(deps, asapResourceSchedule(deps, limits),
                                    limits),
              "");
    for (auto p : {ListPriority::PathLength, ListPriority::Mobility,
                   ListPriority::Urgency}) {
      EXPECT_EQ(
          validateBlockSchedule(deps, listSchedule(deps, limits, p), limits),
          "")
          << listPriorityName(p);
    }
    EXPECT_EQ(validateBlockSchedule(deps, forceDirectedSchedule(deps, 0)), "");
    EXPECT_EQ(validateBlockSchedule(deps, freedomSchedule(deps).schedule), "");
    EXPECT_EQ(
        validateBlockSchedule(
            deps, transformationalSchedule(deps, limits).schedule, limits),
        "");
  }
}

TEST_P(FuzzPipeline, ListNeverBeatenByAsapAndBnbNeverWorse) {
  GenCase gen = genCase((std::uint64_t)GetParam());
  Function fn = compileBdlOrThrow(gen.source);
  optimize(fn);
  auto limits = ResourceLimits::universalSet(2);
  for (const auto& blk : fn.blocks()) {
    if (blk.ops.empty()) continue;
    BlockDeps deps(fn, blk);
    auto ls = listSchedule(deps, limits, ListPriority::PathLength);
    auto br = branchBoundSchedule(deps, limits, 200000);
    EXPECT_LE(br.schedule.numSteps, ls.numSteps) << blk.name;
  }
}

TEST_P(FuzzPipeline, RegisterAllocationValidAndLeftEdgeOptimal) {
  GenCase gen = genCase((std::uint64_t)GetParam());
  Function fn = compileBdlOrThrow(gen.source);
  optimize(fn);
  auto limits = ResourceLimits::universalSet(2);
  Schedule sched = scheduleFunction(fn, [&](const BlockDeps& d) {
    return listSchedule(d, limits, ListPriority::PathLength);
  });
  LifetimeInfo lt = computeLifetimes(fn, sched);
  for (auto m : {RegAllocMethod::LeftEdge, RegAllocMethod::Clique,
                 RegAllocMethod::Naive}) {
    auto regs = allocateRegisters(lt, m);
    EXPECT_EQ(validateRegAssignment(lt, regs), "");
  }
  EXPECT_EQ(allocateRegisters(lt, RegAllocMethod::LeftEdge).numRegs,
            lt.maxOverlap());
}

TEST_P(FuzzPipeline, RtlMatchesBehaviorEndToEnd) {
  GenCase gen = genCase((std::uint64_t)GetParam());
  SynthesisOptions opts;
  opts.scheduler = SchedulerKind::List;
  opts.resources = ResourceLimits::universalSet(1 + (GetParam() % 3));
  opts.opt = (GetParam() % 2) ? OptLevel::Aggressive : OptLevel::Standard;
  opts.fuMethod = (GetParam() % 3 == 0) ? FuAllocMethod::Clique
                                        : FuAllocMethod::GreedyLocal;
  Synthesizer synth(opts);
  SynthesisResult r = synth.synthesizeSource(gen.source);
  for (int trial = 0; trial < 4; ++trial) {
    auto in = randomInputs(gen.inputs, (std::uint64_t)GetParam(), trial);
    EXPECT_EQ(verifyAgainstBehavior(r, in), "") << gen.source;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzPipeline, ::testing::Range(1, 33));

// ----------------------------------------------------- structure properties

class FuzzStructures : public ::testing::TestWithParam<int> {};

TEST_P(FuzzStructures, SopMinimizationIsExact) {
  Rng rng((std::uint64_t)GetParam() * 977);
  SopCover cover;
  cover.numInputs = 3 + (int)rng.below(5);   // up to 7 inputs
  cover.numOutputs = 1 + (int)rng.below(4);
  int nCubes = 3 + (int)rng.below(12);
  for (int c = 0; c < nCubes; ++c) {
    Cube cube;
    for (int i = 0; i < cover.numInputs; ++i)
      cube.in.push_back((std::uint8_t)rng.below(3));  // 0/1/dc
    bool any = false;
    for (int o = 0; o < cover.numOutputs; ++o) {
      std::uint8_t b = rng.chance(50) ? 1 : 0;
      cube.out.push_back(b);
      any = any || b;
    }
    if (!any) cube.out[0] = 1;
    cover.cubes.push_back(std::move(cube));
  }
  SopCover min = minimizeCover(cover);
  EXPECT_TRUE(coversEquivalent(cover, min));
  EXPECT_LE(min.termCount(), cover.termCount());
}

TEST_P(FuzzStructures, CliqueCoversValidAndGreedyBounded) {
  Rng rng((std::uint64_t)GetParam() * 1543);
  std::size_t n = 4 + rng.below(9);  // up to 12 nodes (exact feasible)
  CompatGraph g(n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      if (rng.chance(45)) g.addEdge(i, j);
  auto greedy = cliquePartition(g);
  auto exact = cliquePartitionExact(g);
  EXPECT_TRUE(coverIsValid(g, greedy));
  EXPECT_TRUE(coverIsValid(g, exact));
  EXPECT_GE(greedy.count, exact.count);
  // Exact is at most n and at least the trivial bound.
  EXPECT_LE(exact.count, n);
}

TEST_P(FuzzStructures, LeftEdgeOptimalOnRandomIntervals) {
  Rng rng((std::uint64_t)GetParam() * 3571);
  LifetimeInfo lt;
  lt.totalSteps = 40;
  std::size_t n = 5 + rng.below(30);
  for (std::size_t i = 0; i < n; ++i) {
    StorageItem item;
    item.kind = StorageItem::Kind::Temp;
    item.width = 8;
    int b = (int)rng.below(35);
    item.live = {b, b + 1 + (int)rng.below(8)};
    // Sequential append: GCC 12 -Wrestrict -O3 false positive (see vcd.cpp).
    item.name = "i";
    item.name += std::to_string(i);
    lt.items.push_back(item);
  }
  auto regs = allocateRegisters(lt, RegAllocMethod::LeftEdge);
  EXPECT_EQ(validateRegAssignment(lt, regs), "");
  EXPECT_EQ(regs.numRegs, lt.maxOverlap());
  auto clique = allocateRegisters(lt, RegAllocMethod::Clique);
  EXPECT_EQ(validateRegAssignment(lt, clique), "");
  EXPECT_GE(clique.numRegs, regs.numRegs);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzStructures, ::testing::Range(1, 41));

}  // namespace
}  // namespace mphls
