// Structured-logging battery: JSONL record shape and field types, level
// filtering, token-bucket rate limiting, flight-recorder rings (record,
// wraparound, signal-safe dump, in-process SIGQUIT crash capture), the
// Prometheus text exposition with its histogram invariants, the
// /debug/flight and /metrics?format= service routes, the per-request
// access log, and the bench --check regression gate.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <csignal>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/json_reader.h"
#include "core/bench_check.h"
#include "obs/flight_recorder.h"
#include "obs/log.h"
#include "obs/metrics.h"
#include "serve/service.h"

namespace mphls {
namespace {

namespace fs = std::filesystem;

/// Unique scratch directory, removed on scope exit.
struct TempDir {
  fs::path path;
  explicit TempDir(const std::string& tag)
      : path(fs::temp_directory_path() /
             ("mphls-log-test-" + tag + "-" + std::to_string(::getpid()))) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() { fs::remove_all(path); }
};

/// Restores the logger to its silent default when a test exits.
struct LoggerReset {
  LoggerReset() { obs::Logger::global().resetForTest(); }
  ~LoggerReset() { obs::Logger::global().resetForTest(); }
};

std::vector<std::string> readLines(const fs::path& p) {
  std::ifstream in(p);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) lines.push_back(line);
  return lines;
}

// ------------------------------------------------------------- logger

TEST(Log, ParseAndNameRoundTrip) {
  using obs::LogLevel;
  EXPECT_EQ(obs::parseLogLevel("debug"), LogLevel::Debug);
  EXPECT_EQ(obs::parseLogLevel("info"), LogLevel::Info);
  EXPECT_EQ(obs::parseLogLevel("warn"), LogLevel::Warn);
  EXPECT_EQ(obs::parseLogLevel("warning"), LogLevel::Warn);
  EXPECT_EQ(obs::parseLogLevel("error"), LogLevel::Error);
  EXPECT_EQ(obs::parseLogLevel("off"), LogLevel::Off);
  EXPECT_EQ(obs::parseLogLevel("bogus"), LogLevel::Off);
  EXPECT_STREQ(obs::logLevelName(LogLevel::Info), "info");
  EXPECT_STREQ(obs::logLevelName(LogLevel::Error), "error");
}

TEST(Log, DisabledByDefaultAndCheapToAsk) {
  LoggerReset guard;
  auto& lg = obs::Logger::global();
  EXPECT_EQ(lg.level(), obs::LogLevel::Off);
  EXPECT_FALSE(lg.enabled(obs::LogLevel::Error));
  // Calls below threshold are no-ops; nothing to observe, must not crash.
  lg.info("test", "into the void", {{"n", 1}});
}

TEST(Log, JsonlRecordShapeAndFieldTypes) {
  LoggerReset guard;
  TempDir tmp("jsonl");
  const fs::path file = tmp.path / "app.log";
  auto& lg = obs::Logger::global();
  ASSERT_TRUE(lg.openFile(file.string()));
  lg.setLevel(obs::LogLevel::Debug);

  lg.info("serve", "request",
          {{"endpoint", "/synth"},
           {"status", 200},
           {"ms", 1.5},
           {"hit", true},
           {"neg", -7},
           {"big", (unsigned long long)0xffffffffffffffffULL}});
  lg.error("core", "weird \"msg\"\nwith\tescapes");
  lg.resetForTest();  // closes + flushes the sink

  const auto lines = readLines(file);
  ASSERT_EQ(lines.size(), 2u);
  auto rec = json::parse(lines[0]);
  ASSERT_TRUE(rec);
  EXPECT_EQ(rec->getString("level"), "info");
  EXPECT_EQ(rec->getString("component"), "serve");
  EXPECT_EQ(rec->getString("msg"), "request");
  EXPECT_EQ(rec->getString("endpoint"), "/synth");
  EXPECT_EQ(rec->getNumber("status"), 200);
  EXPECT_DOUBLE_EQ(rec->getNumber("ms"), 1.5);
  EXPECT_TRUE(rec->getBool("hit"));
  EXPECT_EQ(rec->getNumber("neg"), -7);
  EXPECT_EQ(rec->getNumber("big"), 18446744073709551615.0);
  // Timestamps are ISO-8601 UTC with millisecond precision.
  const std::string ts = rec->getString("ts");
  ASSERT_EQ(ts.size(), 24u) << ts;
  EXPECT_EQ(ts[4], '-');
  EXPECT_EQ(ts[10], 'T');
  EXPECT_EQ(ts[19], '.');
  EXPECT_EQ(ts.back(), 'Z');

  auto rec2 = json::parse(lines[1]);
  ASSERT_TRUE(rec2);
  EXPECT_EQ(rec2->getString("level"), "error");
  EXPECT_EQ(rec2->getString("msg"), "weird \"msg\"\nwith\tescapes");
}

TEST(Log, LevelFiltering) {
  LoggerReset guard;
  TempDir tmp("filter");
  const fs::path file = tmp.path / "app.log";
  auto& lg = obs::Logger::global();
  ASSERT_TRUE(lg.openFile(file.string()));
  lg.setLevel(obs::LogLevel::Warn);
  EXPECT_FALSE(lg.enabled(obs::LogLevel::Debug));
  EXPECT_FALSE(lg.enabled(obs::LogLevel::Info));
  EXPECT_TRUE(lg.enabled(obs::LogLevel::Warn));
  EXPECT_TRUE(lg.enabled(obs::LogLevel::Error));

  lg.debug("test", "below");
  lg.info("test", "below");
  lg.warn("test", "kept-warn");
  lg.error("test", "kept-error");
  lg.resetForTest();

  const auto lines = readLines(file);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("kept-warn"), std::string::npos);
  EXPECT_NE(lines[1].find("kept-error"), std::string::npos);
}

TEST(Log, RateLimitDropsAndAnnounces) {
  LoggerReset guard;
  TempDir tmp("rate");
  const fs::path file = tmp.path / "app.log";
  auto& lg = obs::Logger::global();
  ASSERT_TRUE(lg.openFile(file.string()));
  lg.setLevel(obs::LogLevel::Info);
  // Sustained rate near zero, burst of 3: exactly the first 3 records of
  // a tight loop are admitted, the rest counted as dropped.
  lg.setRateLimit(0.0001, 3);
  for (int i = 0; i < 50; ++i) lg.info("test", "burst " + std::to_string(i));
  EXPECT_EQ(lg.dropped(), 47u);

  // Refilling the bucket admits a record that announces the drops.
  lg.setRateLimit(1000, 3);
  lg.info("test", "after the storm");
  lg.resetForTest();

  const auto lines = readLines(file);
  ASSERT_GE(lines.size(), 4u);
  EXPECT_NE(lines[0].find("burst 0"), std::string::npos);
  EXPECT_NE(lines[2].find("burst 2"), std::string::npos);
  bool announced = false;
  for (const auto& l : lines)
    if (l.find("rate limited") != std::string::npos &&
        l.find("47") != std::string::npos)
      announced = true;
  EXPECT_TRUE(announced) << "drop notice missing";
}

// ---------------------------------------------------- flight recorder

TEST(Flight, RecordWrapAndDecode) {
  auto& fr = obs::FlightRecorder::global();
  fr.enable(8);  // idempotent; first capacity wins across the binary
  fr.clearForTest();
  ASSERT_TRUE(fr.enabled());
  const std::size_t cap = fr.capacityPerThread();
  ASSERT_GE(cap, 8u);

  const std::uint64_t total0 = fr.totalRecorded();
  const int n = static_cast<int>(cap) + 5;  // force wraparound
  for (int i = 0; i < n; ++i)
    fr.record('L', obs::LogLevel::Info, "test", "evt " + std::to_string(i));
  EXPECT_EQ(fr.totalRecorded() - total0, (std::uint64_t)n);

  auto doc = json::parse(fr.toJson());
  ASSERT_TRUE(doc);
  const json::Node* meta = doc->get("flight_recorder");
  ASSERT_TRUE(meta);
  EXPECT_EQ(meta->getNumber("capacity_per_thread"), (double)cap);
  const json::Node* events = doc->get("events");
  ASSERT_TRUE(events);
  ASSERT_EQ(events->size(), cap);  // ring keeps the newest `cap`
  // Sorted by seq, and the survivors are the most recent events.
  double lastSeq = -1;
  for (std::size_t i = 0; i < events->size(); ++i) {
    const json::Node* e = events->at(i);
    EXPECT_GT(e->getNumber("seq"), lastSeq);
    lastSeq = e->getNumber("seq");
    EXPECT_EQ(e->getString("component"), "test");
    EXPECT_EQ(e->getString("kind"), "log");
  }
  const json::Node* last = events->at(events->size() - 1);
  EXPECT_EQ(last->getString("msg"), "evt " + std::to_string(n - 1));
}

TEST(Flight, TruncatesAndSanitizesInlineBuffers) {
  auto& fr = obs::FlightRecorder::global();
  fr.enable(8);
  fr.clearForTest();
  const std::string longMsg(300, 'x');
  fr.record('L', obs::LogLevel::Warn, "a-very-long-component-name",
            "tab\tquote\"backslash\\" + longMsg);
  auto doc = json::parse(fr.toJson());
  ASSERT_TRUE(doc);
  const json::Node* events = doc->get("events");
  ASSERT_TRUE(events);
  ASSERT_GE(events->size(), 1u);
  const json::Node* e = events->at(events->size() - 1);
  EXPECT_LT(e->getString("component").size(), 18u);
  EXPECT_LT(e->getString("msg").size(), 96u);
  EXPECT_EQ(e->getString("level"), "warn");
}

TEST(Flight, DumpToFileIsParseableJsonl) {
  TempDir tmp("flight");
  auto& fr = obs::FlightRecorder::global();
  fr.enable(8);
  fr.clearForTest();
  fr.record('i', obs::LogLevel::Info, "test", "marker-in-dump");
  const fs::path dump = tmp.path / "flight.dump";
  ASSERT_TRUE(fr.dumpToFile(dump.string().c_str()));

  const auto lines = readLines(dump);
  ASSERT_GE(lines.size(), 2u);  // meta line + >= 1 event
  auto meta = json::parse(lines[0]);
  ASSERT_TRUE(meta);
  ASSERT_TRUE(meta->has("flight_recorder"));
  EXPECT_GE(meta->get("flight_recorder")->getNumber("total_recorded"), 1.0);
  bool sawMarker = false;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    auto e = json::parse(lines[i]);
    ASSERT_TRUE(e) << "unparseable dump line: " << lines[i];
    if (e->getString("msg") == "marker-in-dump") {
      sawMarker = true;
      EXPECT_EQ(e->getString("kind"), "instant");
    }
  }
  EXPECT_TRUE(sawMarker);
}

TEST(Flight, LoggerForwardsIntoRing) {
  LoggerReset guard;
  auto& fr = obs::FlightRecorder::global();
  fr.enable(8);
  fr.clearForTest();
  auto& lg = obs::Logger::global();
  lg.refresh();
  // No sink configured: the record reaches only the flight ring. The
  // combined threshold must report Debug as enabled while the flight
  // recorder is on.
  EXPECT_TRUE(lg.enabled(obs::LogLevel::Debug));
  lg.setRateLimit(0.0001, 1);  // flight forwarding ignores the limiter
  for (int i = 0; i < 10; ++i)
    lg.warn("fwd", "ring " + std::to_string(i), {{"i", i}});
  auto doc = json::parse(fr.toJson());
  ASSERT_TRUE(doc);
  const json::Node* events = doc->get("events");
  ASSERT_TRUE(events);
  int seen = 0;
  for (std::size_t i = 0; i < events->size(); ++i)
    if (events->at(i)->getString("component") == "fwd") ++seen;
  EXPECT_EQ(seen, 8) << "ring of 8 should hold the newest 8 records";
}

TEST(Flight, SigquitDumpsAndProcessContinues) {
  LoggerReset guard;
  TempDir tmp("sigquit");
  const fs::path dump = tmp.path / "crash.dump";
  obs::FlightRecorder::installCrashHandlers(dump.string().c_str());
  EXPECT_STREQ(obs::FlightRecorder::crashDumpPath(), dump.string().c_str());
  auto& fr = obs::FlightRecorder::global();
  fr.clearForTest();
  fr.record('L', obs::LogLevel::Error, "crash", "last words");

  ASSERT_EQ(::raise(SIGQUIT), 0);
  // Still alive: the SIGQUIT handler dumps and returns.

  const auto lines = readLines(dump);
  ASSERT_GE(lines.size(), 2u);
  bool sawLastWords = false;
  for (std::size_t i = 1; i < lines.size(); ++i) {
    auto e = json::parse(lines[i]);
    ASSERT_TRUE(e) << "unparseable dump line: " << lines[i];
    if (e->getString("msg") == "last words" &&
        e->getString("level") == "error")
      sawLastWords = true;
  }
  EXPECT_TRUE(sawLastWords);
  // Handlers for SIGQUIT stay installed; later tests are unaffected
  // because the handler only writes the registered file.
}

// ---------------------------------------------- histogram + prometheus

TEST(Metrics, HistogramBucketsCumulative) {
  auto& h = obs::MetricsRegistry::global().histogram("test.log.buckets");
  h.reset();
  h.observe(0.0001);  // below first bound -> bucket 0
  h.observe(0.003);   // (0.0025, 0.005] -> bucket 3
  h.observe(100.0);   // above all bounds -> +Inf bucket
  const auto s = h.stats();
  EXPECT_EQ(s.count, 3u);
  EXPECT_EQ(s.bucketTotal(), 3u);
  EXPECT_EQ(s.buckets.front(), 1u);
  EXPECT_EQ(s.buckets.back(), 1u);
  std::uint64_t mid = 0;
  for (std::size_t i = 1; i + 1 < s.buckets.size(); ++i) mid += s.buckets[i];
  EXPECT_EQ(mid, 1u);
}

TEST(Metrics, PrometheusExposition) {
  auto& mr = obs::MetricsRegistry::global();
  mr.counter("test.prom.count").add(3);
  mr.gauge("test.prom/gauge").set(1.25);
  auto& h = mr.histogram("test.prom.lat");
  h.reset();
  h.observe(0.002);
  h.observe(0.2);
  const std::string text = mr.toPrometheus();

  // Counters get _total and a TYPE line; names are sanitized.
  EXPECT_NE(text.find("# TYPE mphls_test_prom_count_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("mphls_test_prom_count_total 3"), std::string::npos);
  EXPECT_NE(text.find("mphls_test_prom_gauge 1.25"), std::string::npos);
  // Histogram: bucket series, +Inf, _sum, _count.
  EXPECT_NE(text.find("# TYPE mphls_test_prom_lat histogram"),
            std::string::npos);
  EXPECT_NE(text.find("mphls_test_prom_lat_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("mphls_test_prom_lat_count 2"), std::string::npos);
  EXPECT_NE(text.find("mphls_test_prom_lat_sum"), std::string::npos);

  // Bucket counts are cumulative (monotone non-decreasing by le).
  std::istringstream in(text);
  std::string line;
  double last = -1;
  int bucketLines = 0;
  while (std::getline(in, line)) {
    if (line.rfind("mphls_test_prom_lat_bucket", 0) != 0) continue;
    ++bucketLines;
    const double v = std::stod(line.substr(line.rfind(' ') + 1));
    EXPECT_GE(v, last) << line;
    last = v;
  }
  EXPECT_EQ(bucketLines, (int)obs::Histogram::kNumBuckets);
}

TEST(ObsConcurrency, SnapshotWhileObserving) {
  auto& mr = obs::MetricsRegistry::global();
  auto& h = mr.histogram("test.conc.hist");
  h.reset();
  std::atomic<bool> stop{false};
  std::thread writers[3];
  for (auto& t : writers)
    t = std::thread([&] {
      for (int i = 0; !stop.load(std::memory_order_relaxed) && i < 200000;
           ++i)
        h.observe(0.001 * (i % 64));
    });
  for (int i = 0; i < 50; ++i) {
    const auto s = h.stats();
    EXPECT_LE(s.count, 600000u);
    (void)mr.toPrometheus();
    (void)mr.toJson();
  }
  stop.store(true);
  for (auto& t : writers) t.join();
  const auto s = h.stats();
  EXPECT_EQ(s.count, s.bucketTotal());
  EXPECT_GE(s.max, s.min);
}

// ------------------------------------------------------ service routes

TEST(ServeObs, PrometheusFormatAndDebugFlight) {
  obs::FlightRecorder::global().enable(8);
  serve::Service svc;
  serve::HttpRequest get;
  get.method = "GET";
  get.version = "HTTP/1.1";

  get.target = "/metrics?format=prometheus";
  const serve::ServiceResponse prom = svc.handle(get, 1);
  EXPECT_EQ(prom.status, 200);
  EXPECT_EQ(prom.contentType, "text/plain; version=0.0.4; charset=utf-8");
  EXPECT_NE(prom.body.find("# TYPE mphls_"), std::string::npos);

  get.target = "/metrics?format=yaml";
  EXPECT_EQ(svc.handle(get, 1).status, 400);

  get.target = "/metrics?format=json";
  const serve::ServiceResponse js = svc.handle(get, 1);
  EXPECT_EQ(js.status, 200);
  EXPECT_EQ(js.contentType, "application/json");
  EXPECT_TRUE(json::valid(js.body));

  get.target = "/debug/flight";
  const serve::ServiceResponse fl = svc.handle(get, 1);
  EXPECT_EQ(fl.status, 200);
  auto doc = json::parse(fl.body);
  ASSERT_TRUE(doc);
  EXPECT_TRUE(doc->has("flight_recorder"));
  EXPECT_TRUE(doc->has("events"));
}

TEST(ServeObs, AccessLogRecordsRequest) {
  LoggerReset guard;
  TempDir tmp("access");
  const fs::path file = tmp.path / "serve.log";
  auto& lg = obs::Logger::global();
  ASSERT_TRUE(lg.openFile(file.string()));
  lg.setLevel(obs::LogLevel::Info);

  serve::Service svc;
  serve::HttpRequest get;
  get.method = "GET";
  get.target = "/healthz?probe=1";
  get.version = "HTTP/1.1";
  EXPECT_EQ(svc.handle(get, 42).status, 200);
  lg.resetForTest();

  const auto lines = readLines(file);
  ASSERT_GE(lines.size(), 1u);
  const json::Node* access = nullptr;
  std::vector<std::unique_ptr<json::Node>> docs;
  for (const auto& l : lines) {
    docs.push_back(json::parse(l));
    ASSERT_TRUE(docs.back()) << l;
    if (docs.back()->getString("msg") == "request") access = docs.back().get();
  }
  ASSERT_TRUE(access) << "no access-log record";
  EXPECT_EQ(access->getString("component"), "serve");
  EXPECT_EQ(access->getString("method"), "GET");
  // The query string is stripped from the endpoint label.
  EXPECT_EQ(access->getString("endpoint"), "/healthz");
  EXPECT_EQ(access->getNumber("status"), 200);
  EXPECT_EQ(access->getNumber("session"), 42);
  EXPECT_GE(access->getNumber("ms"), 0.0);
  EXPECT_TRUE(access->get("cache_hit") != nullptr);
}

// ------------------------------------------------------- bench --check

void writeFile(const fs::path& p, const std::string& body) {
  std::ofstream out(p);
  out << body;
}

TEST(BenchCheck, PassesAgainstMatchingBaseline) {
  TempDir tmp("benchok");
  const fs::path in = tmp.path / "in";
  const fs::path base = tmp.path / "base";
  fs::create_directories(in);
  fs::create_directories(base);
  const std::string sta =
      "{\"all_closed\": true, \"worst_slack\": 1.25,"
      " \"wall_seconds\": 0.5}";
  writeFile(in / "BENCH_sta.json", sta);
  writeFile(base / "BENCH_sta.json", sta);

  BenchCheckOptions opts;
  opts.inDirs = {in.string()};
  opts.baselineDir = base.string();
  opts.outFile = (tmp.path / "verdict.json").string();
  opts.quiet = true;
  EXPECT_EQ(runBenchCheck(opts), 0);

  std::ifstream vf(opts.outFile);
  std::ostringstream ss;
  ss << vf.rdbuf();
  auto verdict = json::parse(ss.str());
  ASSERT_TRUE(verdict);
  EXPECT_TRUE(verdict->getBool("ok"));
  EXPECT_EQ(verdict->getNumber("compared_files"), 1);
  EXPECT_EQ(verdict->getNumber("failed"), 0);
}

TEST(BenchCheck, FlagsRegression) {
  TempDir tmp("benchbad");
  const fs::path in = tmp.path / "in";
  const fs::path base = tmp.path / "base";
  fs::create_directories(in);
  fs::create_directories(base);
  // Wall time regressed 10x: outside the 2.5x + 1s band.
  writeFile(in / "BENCH_sta.json",
            "{\"all_closed\": true, \"worst_slack\": 1.25,"
            " \"wall_seconds\": 20.0}");
  writeFile(base / "BENCH_sta.json",
            "{\"all_closed\": true, \"worst_slack\": 1.25,"
            " \"wall_seconds\": 2.0}");

  BenchCheckOptions opts;
  opts.inDirs = {in.string()};
  opts.baselineDir = base.string();
  opts.outFile = (tmp.path / "verdict.json").string();
  opts.quiet = true;
  EXPECT_EQ(runBenchCheck(opts), 1);

  std::ifstream vf(opts.outFile);
  std::ostringstream ss;
  ss << vf.rdbuf();
  auto verdict = json::parse(ss.str());
  ASSERT_TRUE(verdict);
  EXPECT_FALSE(verdict->getBool("ok"));
  EXPECT_GE(verdict->getNumber("failed"), 1);
}

TEST(BenchCheck, MissingBaselineSkipsNotFails) {
  TempDir tmp("benchskip");
  const fs::path in = tmp.path / "in";
  fs::create_directories(in);
  writeFile(in / "BENCH_sta.json",
            "{\"all_closed\": true, \"worst_slack\": 1.25,"
            " \"wall_seconds\": 0.5}");

  BenchCheckOptions opts;
  opts.inDirs = {in.string()};
  opts.baselineDir = (tmp.path / "nonexistent").string();
  opts.outFile.clear();
  opts.quiet = true;
  // Invariant checks (all_closed) still run and pass; baseline-relative
  // ones are skipped, which must not fail the gate.
  EXPECT_EQ(runBenchCheck(opts), 0);
}

TEST(BenchCheck, NoReportsIsAnError) {
  TempDir tmp("benchempty");
  BenchCheckOptions opts;
  opts.inDirs = {tmp.path.string()};
  opts.baselineDir = (tmp.path / "none").string();
  opts.outFile.clear();
  opts.quiet = true;
  EXPECT_EQ(runBenchCheck(opts), 1);
}

}  // namespace
}  // namespace mphls
