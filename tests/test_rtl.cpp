// RTL-level tests: the microprogram-driven simulator (both microword
// styles) against the FSM simulator and the behavioral interpreter, the
// shared source-evaluation helpers, and Verilog emission details.
#include <gtest/gtest.h>

#include "core/designs.h"
#include "core/synthesizer.h"
#include "rtl/microsim.h"
#include "rtl/rtlsim.h"
#include "rtl/source_eval.h"
#include "rtl/verilog.h"

namespace mphls {
namespace {

// ----------------------------------------------------------- source eval

TEST(SourceEval, ApplyXformChains) {
  using rtl::applyXform;
  // zext 8->16 then shl 4: 0xAB -> 0x0AB0.
  std::vector<WireXform> chain = {{OpKind::ZExt, 0, 16},
                                  {OpKind::ShlConst, 4, 16}};
  EXPECT_EQ(applyXform(0xAB, 8, chain), 0xAB0u);
  // sext 4->8 of 0xF (-1) -> 0xFF.
  std::vector<WireXform> se = {{OpKind::SExt, 0, 8}};
  EXPECT_EQ(applyXform(0xF, 4, se), 0xFFu);
  // trunc 16->4.
  std::vector<WireXform> tr = {{OpKind::Trunc, 0, 4}};
  EXPECT_EQ(applyXform(0xABCD, 16, tr), 0xDu);
  // arithmetic shift on signed root.
  std::vector<WireXform> sar = {{OpKind::SarConst, 2, 8}};
  EXPECT_EQ(applyXform(0x80, 8, sar), 0xE0u);
}

TEST(SourceEval, SourceValueKinds) {
  std::vector<std::uint64_t> regs = {42, 7};
  std::vector<std::uint64_t> ports = {3};
  std::vector<std::uint64_t> fuOut = {99};
  std::vector<bool> fuActive = {true};
  Source r{Source::Kind::Reg, 0, 0, {}, 8};
  EXPECT_EQ(rtl::sourceValue(r, regs, ports, fuOut, fuActive), 42u);
  Source p{Source::Kind::Port, 0, 0, {}, 8};
  EXPECT_EQ(rtl::sourceValue(p, regs, ports, fuOut, fuActive), 3u);
  Source c{Source::Kind::Const, 0, 1234, {}, 16};
  EXPECT_EQ(rtl::sourceValue(c, regs, ports, fuOut, fuActive), 1234u);
  Source f{Source::Kind::Fu, 0, 0, {}, 8};
  EXPECT_EQ(rtl::sourceValue(f, regs, ports, fuOut, fuActive), 99u);
  // Register read truncates to the root width.
  Source narrow{Source::Kind::Reg, 0, 0, {}, 4};
  EXPECT_EQ(rtl::sourceValue(narrow, regs, ports, fuOut, fuActive), 10u);
}

// ------------------------------------------------- microcode simulation

class MicrosimMatrix
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(MicrosimMatrix, MicroprogramMatchesFsmAndBehavior) {
  const auto& design = designs::all()[(std::size_t)std::get<0>(GetParam())];
  const bool horizontal = std::get<1>(GetParam()) == 0;

  SynthesisOptions opts;
  opts.scheduler = SchedulerKind::List;
  opts.resources = ResourceLimits::universalSet(2);
  Synthesizer synth(opts);
  SynthesisResult r = synth.synthesizeSource(design.source);

  const Microprogram& mp =
      horizontal ? r.microHorizontal : r.microEncoded;
  MicrocodeSimulator usim(r.design, mp);
  RtlSimulator fsim(r.design);

  std::uint64_t seed = 777;
  for (int trial = 0; trial < 5; ++trial) {
    auto inputs = design.sampleInputs;
    if (trial > 0) {
      for (auto& [k, v] : inputs) {
        seed = seed * 6364136223846793005ull + 1442695040888963407ull;
        v = std::max<std::uint64_t>(1, (v + (seed >> 55)) & 0x3FF);
      }
    }
    auto ur = usim.run(inputs);
    auto fr = fsim.run(inputs);
    ASSERT_TRUE(ur.finished) << design.name;
    ASSERT_TRUE(fr.finished) << design.name;
    EXPECT_EQ(ur.outputs, fr.outputs)
        << design.name << " " << microcodeStyleName(mp.style);
    EXPECT_EQ(ur.cycles, fr.cycles)
        << design.name << ": microsequencer cycle count differs";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Designs, MicrosimMatrix,
    ::testing::Combine(::testing::Range(0, (int)designs::all().size()),
                       ::testing::Range(0, 2)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      std::string n =
          designs::all()[(std::size_t)std::get<0>(info.param)].name;
      n += std::get<1>(info.param) == 0 ? "_horizontal" : "_encoded";
      return n;
    });

TEST(Microsim, CondSelectTablePopulated) {
  SynthesisOptions opts;
  opts.resources = ResourceLimits::universalSet(2);
  Synthesizer synth(opts);
  SynthesisResult r = synth.synthesizeSource(designs::gcdSource());
  // gcd has one loop condition.
  EXPECT_GE(r.microEncoded.condTable.size(), 1u);
  EXPECT_EQ(r.microEncoded.entryAddress, r.design.ctrl.initial.get());
  EXPECT_EQ(r.microEncoded.haltAddress, r.design.ctrl.haltState.get());
}

// ------------------------------------------------------------- verilog

TEST(Verilog, EmitsWiringTransforms) {
  // A design whose operand wiring includes shifts and extensions.
  SynthesisOptions opts;
  opts.resources = ResourceLimits::universalSet(2);
  Synthesizer synth(opts);
  SynthesisResult r = synth.synthesizeSource(designs::sqrtSource());
  std::string v = emitVerilog(r.design);
  EXPECT_NE(v.find(">>"), std::string::npos);   // constant right shift
  EXPECT_NE(v.find("'d0, "), std::string::npos);  // zero extension concat
  EXPECT_NE(v.find("localparam S0"), std::string::npos);
  EXPECT_NE(v.find("assign done"), std::string::npos);
}

TEST(Verilog, StateCountMatchesController) {
  SynthesisOptions opts;
  opts.resources = ResourceLimits::universalSet(2);
  Synthesizer synth(opts);
  SynthesisResult r = synth.synthesizeSource(designs::fir8Source());
  std::string v = emitVerilog(r.design);
  for (std::size_t s = 0; s < r.design.ctrl.numStates(); ++s)
    EXPECT_NE(v.find("localparam S" + std::to_string(s) + " "),
              std::string::npos)
        << s;
}

TEST(Verilog, EveryRegisterDeclared) {
  SynthesisOptions opts;
  opts.resources = ResourceLimits::universalSet(1);
  Synthesizer synth(opts);
  SynthesisResult r = synth.synthesizeSource(designs::diffeqSource());
  std::string v = emitVerilog(r.design);
  for (int reg = 0; reg < r.design.regs.numRegs; ++reg) {
    // Sequential append: GCC 12 -Wrestrict -O3 false positive (see vcd.cpp).
    std::string decl = "r";
    decl += std::to_string(reg);
    decl += ";";
    EXPECT_NE(v.find(decl), std::string::npos) << reg;
  }
}

}  // namespace
}  // namespace mphls
