// Tests for controller synthesis: SOP minimization, FSM construction,
// state encodings, control-logic generation, and microcode.
#include <gtest/gtest.h>

#include <set>

#include "common/bitutil.h"

#include "core/designs.h"
#include "core/synthesizer.h"
#include "ctrl/encode.h"
#include "ctrl/microcode.h"
#include "ctrl/sop.h"

namespace mphls {
namespace {

// -------------------------------------------------------------------- SOP

TEST(Sop, CubeMatching) {
  Cube c;
  c.in = {1, 2, 0};  // x0=1, x1=don't care, x2=0
  c.out = {1};
  EXPECT_TRUE(c.matches(0b001));
  EXPECT_TRUE(c.matches(0b011));
  EXPECT_FALSE(c.matches(0b101));
  EXPECT_FALSE(c.matches(0b000));
  EXPECT_EQ(c.literalCount(), 2);
}

TEST(Sop, MergeDistanceOne) {
  SopCover cover;
  cover.numInputs = 2;
  cover.numOutputs = 1;
  cover.cubes.push_back({{0, 0}, {1}});
  cover.cubes.push_back({{0, 1}, {1}});
  SopCover min = minimizeCover(cover);
  EXPECT_EQ(min.termCount(), 1);
  EXPECT_TRUE(coversEquivalent(cover, min));
}

TEST(Sop, AbsorptionDropsCoveredCube) {
  SopCover cover;
  cover.numInputs = 2;
  cover.numOutputs = 1;
  cover.cubes.push_back({{0, 2}, {1}});  // covers x0=0
  cover.cubes.push_back({{0, 1}, {1}});  // inside the first
  SopCover min = minimizeCover(cover);
  EXPECT_EQ(min.termCount(), 1);
  EXPECT_TRUE(coversEquivalent(cover, min));
}

TEST(Sop, FullMintermTableCollapses) {
  // All four minterms of a 2-input function asserted -> single tautology
  // cube after repeated merging.
  SopCover cover;
  cover.numInputs = 2;
  cover.numOutputs = 1;
  for (int v = 0; v < 4; ++v)
    cover.cubes.push_back(
        {{(std::uint8_t)(v & 1), (std::uint8_t)((v >> 1) & 1)}, {1}});
  SopCover min = minimizeCover(cover);
  EXPECT_EQ(min.termCount(), 1);
  EXPECT_EQ(min.cubes[0].literalCount(), 0);
  EXPECT_TRUE(coversEquivalent(cover, min));
}

TEST(Sop, MultiOutputMergeRequiresIdenticalOutputs) {
  SopCover cover;
  cover.numInputs = 1;
  cover.numOutputs = 2;
  cover.cubes.push_back({{0}, {1, 0}});
  cover.cubes.push_back({{1}, {0, 1}});
  SopCover min = minimizeCover(cover);
  EXPECT_EQ(min.termCount(), 2);  // outputs differ: cannot merge
  EXPECT_TRUE(coversEquivalent(cover, min));
}

// ----------------------------------------------------------------- FSM

SynthesisResult synthSqrt(StateEncoding enc = StateEncoding::Binary) {
  SynthesisOptions opts;
  opts.resources = ResourceLimits::universalSet(2);
  opts.encoding = enc;
  Synthesizer synth(opts);
  return synth.synthesizeSource(designs::sqrtSource());
}

TEST(Fsm, StatesMatchControlSteps) {
  SynthesisResult r = synthSqrt();
  // One state per (block, step) plus the halt state.
  std::size_t steps = 0;
  for (const auto& bs : r.design.sched.blocks)
    steps += (std::size_t)bs.numSteps;
  EXPECT_EQ(r.design.ctrl.numStates(), steps + 1);
}

TEST(Fsm, LoopBlockEndsWithConditional) {
  SynthesisResult r = synthSqrt();
  BlockId body = r.design.fn.findBlock("do_body_0");
  ASSERT_TRUE(body.valid());
  int last = r.design.sched.of(body).numSteps - 1;
  StateId sid = r.design.ctrl.stateAt(body, last);
  ASSERT_TRUE(sid.valid());
  const CtrlState& st = r.design.ctrl.state(sid);
  EXPECT_TRUE(st.conditional);
  // Taken leads out of the loop, not-taken back to the body's first state.
  EXPECT_EQ(st.nextNot, r.design.ctrl.stateAt(body, 0));
}

TEST(Fsm, HaltStateSelfLoops) {
  SynthesisResult r = synthSqrt();
  const CtrlState& halt = r.design.ctrl.state(r.design.ctrl.haltState);
  EXPECT_TRUE(halt.halt);
  EXPECT_EQ(halt.next, halt.id);
}

TEST(Fsm, DescribeMentionsStates) {
  SynthesisResult r = synthSqrt();
  std::string d = r.design.ctrl.describe();
  EXPECT_NE(d.find("S0"), std::string::npos);
  EXPECT_NE(d.find("halt"), std::string::npos);
}

// -------------------------------------------------------------- encodings

TEST(Encode, BinaryGrayOneHotShapes) {
  SynthesisResult r = synthSqrt();
  auto bin = encodeController(r.design.ctrl, r.design.ic, r.design.binding,
                              StateEncoding::Binary);
  auto gray = encodeController(r.design.ctrl, r.design.ic, r.design.binding,
                               StateEncoding::Gray);
  auto hot = encodeController(r.design.ctrl, r.design.ic, r.design.binding,
                              StateEncoding::OneHot);
  int n = (int)r.design.ctrl.numStates();
  EXPECT_EQ(bin.stateBits, bitsForStates((std::uint64_t)n));
  EXPECT_EQ(gray.stateBits, bin.stateBits);
  EXPECT_EQ(hot.stateBits, n);
  // Codes are unique in every encoding.
  for (auto* e : {&bin, &gray, &hot}) {
    std::set<std::uint64_t> seen(e->codeOf.begin(), e->codeOf.end());
    EXPECT_EQ(seen.size(), e->codeOf.size());
  }
  // Gray: successive codes differ in exactly one bit.
  for (std::size_t s = 1; s < gray.codeOf.size(); ++s) {
    std::uint64_t diff = gray.codeOf[s] ^ gray.codeOf[s - 1];
    EXPECT_EQ(__builtin_popcountll(diff), 1);
  }
}

TEST(Encode, MinimizationPreservesFunction) {
  SynthesisResult r = synthSqrt();
  for (auto enc : {StateEncoding::Binary, StateEncoding::Gray}) {
    auto e = encodeController(r.design.ctrl, r.design.ic, r.design.binding,
                              enc);
    ASSERT_LE(e.numInputs(), 16);
    EXPECT_TRUE(coversEquivalent(e.logic, e.minimizedLogic))
        << stateEncodingName(enc);
    EXPECT_LE(e.minimizedLogic.termCount(), e.logic.termCount());
  }
}

TEST(Encode, OneHotUsesFewerLiteralsPerTerm) {
  SynthesisResult r = synthSqrt();
  auto bin = encodeController(r.design.ctrl, r.design.ic, r.design.binding,
                              StateEncoding::Binary);
  auto hot = encodeController(r.design.ctrl, r.design.ic, r.design.binding,
                              StateEncoding::OneHot);
  double binAvg = (double)bin.logic.literalCount() / bin.logic.termCount();
  double hotAvg = (double)hot.logic.literalCount() / hot.logic.termCount();
  EXPECT_LT(hotAvg, binAvg);  // single-literal state decode
}

TEST(Encode, SignalsCoverDatapathControls) {
  SynthesisResult r = synthSqrt();
  // At least one register enable and one FU mux select must exist.
  bool regEn = false, fuMux = false;
  for (const auto& name : r.fsm.signalNames) {
    if (name.find("_en") != std::string::npos) regEn = true;
    if (name.find("_m") != std::string::npos) fuMux = true;
  }
  EXPECT_TRUE(regEn);
  EXPECT_TRUE(fuMux);
}

// -------------------------------------------------------------- microcode

TEST(Microcode, HorizontalWiderThanEncoded) {
  SynthesisResult r = synthSqrt();
  EXPECT_GT(r.microHorizontal.wordWidth, r.microEncoded.wordWidth);
  EXPECT_EQ(r.microHorizontal.words.size(), r.design.ctrl.numStates());
  EXPECT_EQ(r.microEncoded.words.size(), r.design.ctrl.numStates());
}

TEST(Microcode, SequencingFieldsPresent) {
  SynthesisResult r = synthSqrt();
  EXPECT_NE(r.microEncoded.field("useq_cond"), nullptr);
  EXPECT_NE(r.microEncoded.field("useq_taken"), nullptr);
  EXPECT_NE(r.microEncoded.field("useq_fallthrough"), nullptr);
  EXPECT_EQ(r.microEncoded.field("useq_taken")->width,
            bitsForStates(r.design.ctrl.numStates()));
}

TEST(Microcode, WordsEncodeTransitions) {
  SynthesisResult r = synthSqrt();
  const Microprogram& mp = r.microEncoded;
  // Find the field indices for the sequencing fields.
  int condIdx = -1, takenIdx = -1, ftIdx = -1;
  for (std::size_t i = 0; i < mp.fields.size(); ++i) {
    if (mp.fields[i].name == "useq_cond") condIdx = (int)i;
    if (mp.fields[i].name == "useq_taken") takenIdx = (int)i;
    if (mp.fields[i].name == "useq_fallthrough") ftIdx = (int)i;
  }
  ASSERT_GE(condIdx, 0);
  for (std::size_t s = 0; s < r.design.ctrl.numStates(); ++s) {
    const CtrlState& st = r.design.ctrl.states[s];
    const auto& w = mp.words[s];
    if (st.conditional) {
      EXPECT_EQ(w[(std::size_t)condIdx], 1u);
      EXPECT_EQ(w[(std::size_t)takenIdx], st.nextTaken.get());
      EXPECT_EQ(w[(std::size_t)ftIdx], st.nextNot.get());
    } else {
      EXPECT_EQ(w[(std::size_t)condIdx], 0u);
      StateId next = st.halt ? st.id : st.next;
      EXPECT_EQ(w[(std::size_t)takenIdx], next.get());
    }
  }
}

TEST(Microcode, StoreBitsReflectStyle) {
  SynthesisResult r = synthSqrt();
  EXPECT_GT(r.microHorizontal.storeBits(), r.microEncoded.storeBits());
  EXPECT_NE(r.microEncoded.dump().find("words"), std::string::npos);
}

}  // namespace
}  // namespace mphls
