// Corrupted netlist: `tmp` is read by the output assign but has no driver.
module undriven(
  input wire clk,
  input wire [7:0] a,
  output wire [7:0] y
);
  wire [7:0] tmp;
  assign y = tmp;
endmodule
