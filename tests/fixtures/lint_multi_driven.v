// Corrupted netlist: `y` is driven from two different always blocks.
module multi_driven(
  input wire clk,
  input wire [7:0] a,
  output reg [7:0] y
);
  always @(posedge clk) begin
    y <= a;
  end
  always @(posedge clk) begin
    y <= 8'd0;
  end
endmodule
