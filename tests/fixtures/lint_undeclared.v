// Corrupted netlist: `ghost` is assigned and read but never declared.
module undeclared(
  input wire clk,
  input wire [7:0] a,
  output wire [7:0] y
);
  assign ghost = a;
  assign y = ghost;
endmodule
