// Corrupted netlist: 4-bit `narrow` is assigned an 8-bit sized literal.
module width_mismatch(
  input wire clk,
  output wire [3:0] narrow
);
  assign narrow = 8'hff;
endmodule
