// Corrupted netlist: `orphan` is declared but neither read nor driven.
module unused(
  input wire clk,
  input wire [7:0] a,
  output wire [7:0] y
);
  wire [15:0] orphan;
  assign y = a;
endmodule
