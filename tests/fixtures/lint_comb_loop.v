// Corrupted netlist: `a` and `b` form an unconditional combinational cycle.
module comb_loop(
  input wire clk,
  input wire [7:0] x,
  output wire [7:0] y
);
  wire [7:0] a;
  wire [7:0] b;
  assign a = b + x;
  assign b = a;
  assign y = a;
endmodule
