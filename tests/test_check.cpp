// Tests for the src/check/ static verification subsystem: every analyzer is
// exercised once on a known-good design (must be clean) and once on a
// hand-corrupted artifact (must fire with the expected check id). The
// Verilog linter negatives read the hand-corrupted fixtures under
// tests/fixtures/.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "check/check.h"
#include "core/designs.h"
#include "core/synthesizer.h"
#include "rtl/verilog.h"

namespace mphls {
namespace {

SynthesisOptions baseOptions() {
  SynthesisOptions opts;
  opts.resources = ResourceLimits::universalSet(2);
  opts.check = false;  // corruption tests run the analyzers themselves
  return opts;
}

SynthesisResult synthesizeDesign(const char* source,
                                 SynthesisOptions opts = baseOptions()) {
  Synthesizer synth(opts);
  return synth.synthesizeSource(source);
}

CheckOptions checkOptionsFor(const SynthesisOptions& opts) {
  CheckOptions copts;
  copts.resources = opts.resources;
  copts.latencies = opts.latencies;
  return copts;
}

std::string fixture(const std::string& name) {
  std::ifstream in(std::string(MPHLS_FIXTURE_DIR) + "/" + name);
  EXPECT_TRUE(in.good()) << "missing fixture " << name;
  std::stringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// --- positive: every built-in design is check-clean end to end -------------

TEST(CheckClean, AllDesignsPassEveryAnalyzer) {
  for (const auto& d : designs::all()) {
    SynthesisOptions opts = baseOptions();
    SynthesisResult result = synthesizeDesign(d.source, opts);
    CheckReport report = checkDesign(result.design, checkOptionsFor(opts));
    EXPECT_TRUE(report.clean())
        << d.name << ":\n" << report.render();
  }
}

TEST(CheckClean, MulticycleDesignsPassStageAnalyzers) {
  SynthesisOptions opts = baseOptions();
  opts.latencies = OpLatencyModel::multiCycle();
  for (const auto& d : designs::all()) {
    SynthesisResult result = synthesizeDesign(d.source, opts);
    CheckReport report = checkDesign(result.design, checkOptionsFor(opts));
    EXPECT_TRUE(report.clean())
        << d.name << ":\n" << report.render();
  }
}

// --- schedule legality -----------------------------------------------------

TEST(CheckSchedule, DetectsDependenceViolation) {
  SynthesisOptions opts = baseOptions();
  SynthesisResult result = synthesizeDesign(designs::sqrtSource(), opts);
  // Pull an op scheduled after step 0 down to step 0: with ASAP-style
  // placement an op sits late only because a dependence holds it there.
  bool corrupted = false;
  for (auto& bs : result.design.sched.blocks) {
    for (int& s : bs.step) {
      if (s > 0) {
        s = 0;
        corrupted = true;
        break;
      }
    }
    if (corrupted) break;
  }
  ASSERT_TRUE(corrupted);
  CheckReport report = checkDesign(result.design, checkOptionsFor(opts));
  EXPECT_FALSE(report.clean());
  EXPECT_TRUE(report.has("sched.dep-order") ||
              report.has("sched.resource-limit"))
      << report.render();
}

TEST(CheckSchedule, DetectsResourceOveruse) {
  // A schedule produced under 2 universal units cannot satisfy a 1-unit
  // limit (sqrt has parallel ops at its widest step).
  SynthesisOptions opts = baseOptions();
  SynthesisResult result = synthesizeDesign(designs::sqrtSource(), opts);
  CheckOptions copts = checkOptionsFor(opts);
  copts.resources = ResourceLimits::universalSet(1);
  CheckReport report = checkDesign(result.design, copts);
  EXPECT_TRUE(report.has("sched.resource-limit")) << report.render();
}

// --- binding consistency ---------------------------------------------------

TEST(CheckBinding, DetectsRegisterLifetimeOverlap) {
  SynthesisOptions opts = baseOptions();
  SynthesisResult result = synthesizeDesign(designs::diffeqSource(), opts);
  // Force two storage items with overlapping lifetimes onto one register.
  auto& lt = result.design.lifetimes;
  auto& regs = result.design.regs;
  bool corrupted = false;
  for (std::size_t i = 0; i < lt.items.size() && !corrupted; ++i) {
    if (lt.items[i].live.empty()) continue;
    for (std::size_t j = i + 1; j < lt.items.size(); ++j) {
      if (lt.items[j].live.empty()) continue;
      if (lt.items[i].live.overlaps(lt.items[j].live) &&
          regs.regOfItem[i] != regs.regOfItem[j]) {
        regs.regOfItem[j] = regs.regOfItem[i];
        corrupted = true;
        break;
      }
    }
  }
  ASSERT_TRUE(corrupted);
  CheckReport report = checkDesign(result.design, checkOptionsFor(opts));
  EXPECT_TRUE(report.has("bind.reg-overlap")) << report.render();
}

TEST(CheckBinding, DetectsUnboundOperation) {
  SynthesisOptions opts = baseOptions();
  SynthesisResult result = synthesizeDesign(designs::sqrtSource(), opts);
  // Strip the functional unit off the first bound op.
  bool corrupted = false;
  for (auto& blockFus : result.design.binding.fuOfOp) {
    for (int& f : blockFus) {
      if (f >= 0) {
        f = -1;
        corrupted = true;
        break;
      }
    }
    if (corrupted) break;
  }
  ASSERT_TRUE(corrupted);
  CheckReport report = checkDesign(result.design, checkOptionsFor(opts));
  EXPECT_TRUE(report.has("bind.fu-unbound")) << report.render();
}

// --- controller completeness -----------------------------------------------

TEST(CheckController, DetectsMissingAction) {
  SynthesisOptions opts = baseOptions();
  SynthesisResult result = synthesizeDesign(designs::sqrtSource(), opts);
  // Drop one register latch the datapath requires.
  bool corrupted = false;
  for (auto& st : result.design.ctrl.states) {
    if (!st.regActions.empty()) {
      st.regActions.pop_back();
      corrupted = true;
      break;
    }
  }
  ASSERT_TRUE(corrupted);
  CheckReport report = checkDesign(result.design, checkOptionsFor(opts));
  EXPECT_TRUE(report.has("ctrl.action-missing")) << report.render();
}

TEST(CheckController, DetectsSpuriousAction) {
  SynthesisOptions opts = baseOptions();
  SynthesisResult result = synthesizeDesign(designs::gcdSource(), opts);
  // Duplicate a latch into a state that does not schedule it.
  auto& states = result.design.ctrl.states;
  bool corrupted = false;
  for (std::size_t i = 0; i < states.size() && !corrupted; ++i) {
    if (states[i].regActions.empty()) continue;
    for (std::size_t j = 0; j < states.size(); ++j) {
      if (j == i || states[j].halt) continue;
      states[j].regActions.push_back(states[i].regActions.front());
      corrupted = true;
      break;
    }
  }
  ASSERT_TRUE(corrupted);
  CheckReport report = checkDesign(result.design, checkOptionsFor(opts));
  EXPECT_TRUE(report.has("ctrl.action-extra") ||
              report.has("ctrl.action-missing"))
      << report.render();
}

// --- Verilog netlist lint --------------------------------------------------

TEST(LintVerilog, EmittedNetlistsHaveNoErrors) {
  for (const auto& d : designs::all()) {
    SynthesisResult result = synthesizeDesign(d.source);
    CheckReport report;
    lintVerilog(emitVerilog(result.design), report);
    EXPECT_TRUE(report.clean()) << d.name << ":\n" << report.render();
  }
}

TEST(LintVerilog, DetectsUndrivenNet) {
  CheckReport report;
  lintVerilog(fixture("lint_undriven.v"), report);
  EXPECT_TRUE(report.has("lint.undriven")) << report.render();
}

TEST(LintVerilog, DetectsMultiplyDrivenNet) {
  CheckReport report;
  lintVerilog(fixture("lint_multi_driven.v"), report);
  EXPECT_TRUE(report.has("lint.multi-driven")) << report.render();
}

TEST(LintVerilog, DetectsWidthMismatch) {
  CheckReport report;
  lintVerilog(fixture("lint_width_mismatch.v"), report);
  EXPECT_TRUE(report.has("lint.width-mismatch")) << report.render();
}

TEST(LintVerilog, DetectsCombinationalLoop) {
  CheckReport report;
  lintVerilog(fixture("lint_comb_loop.v"), report);
  EXPECT_TRUE(report.has("lint.comb-loop")) << report.render();
}

TEST(LintVerilog, DetectsUndeclaredIdentifier) {
  CheckReport report;
  lintVerilog(fixture("lint_undeclared.v"), report);
  EXPECT_TRUE(report.has("lint.undeclared")) << report.render();
}

TEST(LintVerilog, DetectsUnusedNet) {
  CheckReport report;
  lintVerilog(fixture("lint_unused.v"), report);
  EXPECT_TRUE(report.has("lint.unused")) << report.render();
}

// --- report rendering ------------------------------------------------------

TEST(CheckReport, RendersSeverityIdAndLocation) {
  CheckReport report;
  report.error("sched.dep-order", "block loop op 3 (add)", "broken");
  report.warning("lint.unused", "net orphan", "never read");
  EXPECT_EQ(report.errorCount(), 1u);
  EXPECT_EQ(report.warningCount(), 1u);
  EXPECT_FALSE(report.clean());
  std::string text = report.render();
  EXPECT_NE(text.find("error [sched.dep-order] block loop op 3 (add)"),
            std::string::npos);
  EXPECT_NE(text.find("warning [lint.unused] net orphan"),
            std::string::npos);
  EXPECT_NE(text.find("1 error(s), 1 warning(s)"), std::string::npos);
}

}  // namespace
}  // namespace mphls
