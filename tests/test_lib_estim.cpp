// Tests for the hardware module library and the area/timing estimators.
#include <gtest/gtest.h>

#include "core/designs.h"
#include "core/synthesizer.h"
#include "estim/estimate.h"
#include "lib/library.h"

namespace mphls {
namespace {

// ----------------------------------------------------------------- library

TEST(Library, ClassOfCoversArithmetic) {
  EXPECT_EQ(classOf(OpKind::Add), FuClass::Adder);
  EXPECT_EQ(classOf(OpKind::Inc), FuClass::Adder);
  EXPECT_EQ(classOf(OpKind::Mul), FuClass::Multiplier);
  EXPECT_EQ(classOf(OpKind::UDiv), FuClass::Divider);
  EXPECT_EQ(classOf(OpKind::UMod), FuClass::Divider);
  EXPECT_EQ(classOf(OpKind::Shl), FuClass::Shifter);
  EXPECT_EQ(classOf(OpKind::ULt), FuClass::Comparator);
  EXPECT_EQ(classOf(OpKind::And), FuClass::Logic);
  EXPECT_EQ(classOf(OpKind::Select), FuClass::Selector);
  EXPECT_EQ(classOf(OpKind::ShlConst), FuClass::None);
  EXPECT_EQ(classOf(OpKind::LoadVar), FuClass::None);
}

TEST(Library, DefaultHasComponentForEveryFuOp) {
  HwLibrary lib = HwLibrary::defaultLibrary();
  for (OpKind k : {OpKind::Add, OpKind::Sub, OpKind::Mul, OpKind::UDiv,
                   OpKind::UMod, OpKind::Div, OpKind::Mod, OpKind::And,
                   OpKind::Or, OpKind::Xor, OpKind::Not, OpKind::Neg,
                   OpKind::Inc, OpKind::Dec, OpKind::Shl, OpKind::Shr,
                   OpKind::Sar, OpKind::Eq, OpKind::Ne, OpKind::Lt,
                   OpKind::ULt, OpKind::UGe, OpKind::Select}) {
    EXPECT_TRUE(lib.cheapestFor(k, 16).valid()) << opName(k);
  }
}

TEST(Library, RelativeCostsMatchTheEra) {
  HwLibrary lib = HwLibrary::defaultLibrary();
  double adder = lib.component(lib.cheapestFor(OpKind::Add, 16)).area(16);
  double mult = lib.component(lib.cheapestFor(OpKind::Mul, 16)).area(16);
  double divd = lib.component(lib.cheapestFor(OpKind::UDiv, 16)).area(16);
  // "multiplier >> adder area; divider larger and slower still"
  EXPECT_GT(mult, 4 * adder);
  EXPECT_GT(divd, mult);
  double addDelay = lib.component(lib.cheapestFor(OpKind::Add, 16)).delay(16);
  double divDelay = lib.component(lib.cheapestFor(OpKind::UDiv, 16)).delay(16);
  EXPECT_GT(divDelay, addDelay);
}

TEST(Library, AluCoversThreeClassesAndCostsLess) {
  HwLibrary lib = HwLibrary::defaultLibrary();
  CompId alu = lib.findByName("alu");
  ASSERT_TRUE(alu.valid());
  const Component& c = lib.component(alu);
  EXPECT_TRUE(c.supports(OpKind::Add));
  EXPECT_TRUE(c.supports(OpKind::And));
  EXPECT_TRUE(c.supports(OpKind::ULt));
  // Cheaper than buying the three single-function units it replaces.
  double three =
      lib.component(lib.findByName("adder")).area(16) +
      lib.component(lib.findByName("logic_unit")).area(16) +
      lib.component(lib.findByName("comparator")).area(16);
  EXPECT_LT(c.area(16), three);
  // cheapestForAll picks the ALU when ops span classes.
  CompId pick = lib.cheapestForAll({OpKind::Add, OpKind::Xor}, 16);
  EXPECT_EQ(pick, alu);
}

TEST(Library, NoComponentDoesMulAndDiv) {
  HwLibrary lib = HwLibrary::defaultLibrary();
  EXPECT_FALSE(lib.cheapestForAll({OpKind::Mul, OpKind::UDiv}, 16).valid());
}

TEST(Library, MuxAndBusCostShapes) {
  HwLibrary lib = HwLibrary::defaultLibrary();
  EXPECT_EQ(lib.muxArea(1, 16), 0.0);
  EXPECT_GT(lib.muxArea(3, 16), lib.muxArea(2, 16));
  EXPECT_GT(lib.muxArea(2, 32), lib.muxArea(2, 16));
  EXPECT_EQ(lib.muxDelay(1), 0.0);
  EXPECT_GT(lib.muxDelay(8), lib.muxDelay(2));
  EXPECT_GT(lib.busArea(4, 16), lib.busArea(2, 16));
  EXPECT_GT(lib.busDelay(8), lib.busDelay(2));
  // Wide muxes eventually cost more than a bus with the same sources.
  EXPECT_GT(lib.muxArea(12, 16), lib.busArea(12, 16));
}

// --------------------------------------------------------------- estimation

SynthesisResult synth(const char* src, int fus = 2) {
  SynthesisOptions o;
  o.scheduler = SchedulerKind::List;
  o.resources = ResourceLimits::universalSet(fus);
  Synthesizer s(o);
  return s.synthesizeSource(src);
}

TEST(Estimate, AreaComponentsPositiveAndSum) {
  auto r = synth(designs::sqrtSource());
  EXPECT_GT(r.area.fuArea, 0);
  EXPECT_GT(r.area.regArea, 0);
  EXPECT_GT(r.area.controlArea, 0);
  double parts = r.area.fuArea + r.area.regArea + r.area.muxArea +
                 r.area.controlArea;
  EXPECT_NEAR(r.area.total(), parts * (1.0 + r.area.wiringFactor), 1e-9);
}

TEST(Estimate, CycleTimeDominatedBySlowestUsedUnit) {
  // sqrt uses the divider: its cycle must exceed a mul-free design's.
  auto rDiv = synth(designs::sqrtSource());
  auto rAdd = synth(
      "proc f(in a: uint<16>, in b: uint<16>, out y: uint<16>) {"
      " y = a + b; }");
  EXPECT_GT(rDiv.timing.cycleTime, rAdd.timing.cycleTime);
  EXPECT_GE(rDiv.timing.criticalState, 0);
}

TEST(Estimate, TotalAndTotalBusDirectMath) {
  AreaEstimate a;
  a.fuArea = 10;
  a.regArea = 5;
  a.muxArea = 3;
  a.busArea = 2;
  a.controlArea = 4;
  a.wiringFactor = 0.15;
  EXPECT_DOUBLE_EQ(a.total(), (10 + 5 + 3 + 4) * 1.15);
  EXPECT_DOUBLE_EQ(a.totalBus(), (10 + 5 + 2 + 4) * 1.15);
  // Zero wiring factor degenerates to the plain sums.
  a.wiringFactor = 0;
  EXPECT_DOUBLE_EQ(a.total(), 22.0);
  EXPECT_DOUBLE_EQ(a.totalBus(), 21.0);
}

TEST(Estimate, PinnedBuiltinCycleTimes) {
  // Regression pins for the path-accurate timing model (cross-validated
  // against the STA engine on every checked synthesis): worst
  // register-to-register delay at 2 universal FUs, list scheduling.
  struct Pin {
    const char* name;
    const char* src;
    double cycle;
  };
  const Pin pins[] = {
      {"sqrt", designs::sqrtSource(), 43.7},
      {"diffeq", designs::diffeqSource(), 25.9},
      {"ewf", designs::ewfSource(), 25.9},
      {"fir8", designs::fir8Source(), 25.9},
      {"gcd", designs::gcdSource(), 23.7},
  };
  for (const Pin& p : pins) {
    auto r = synth(p.src);
    EXPECT_NEAR(r.timing.cycleTime, p.cycle, 1e-6) << p.name;
    EXPECT_NEAR(estimateTiming(r.design).cycleTime, p.cycle, 1e-6)
        << p.name;
  }
}

TEST(Estimate, HandComputedSingleAddCycle) {
  // One 16-bit add with single-leg (free) muxes: adder delay
  // 1.0 + 0.35/bit plus the 0.5 capture setup.
  auto r = synth(
      "proc f(in a: uint<16>, in b: uint<16>, out y: uint<16>) {"
      " y = a + b; }");
  TimingEstimate t = estimateTiming(r.design);
  EXPECT_NEAR(t.cycleTime, 1.0 + 0.35 * 16 + 0.5, 1e-9);
  EXPECT_GE(t.busCycleTime, t.cycleTime - 1e-9);
  EXPECT_GE(t.criticalState, 0);
}

TEST(Estimate, DesignPointArithmetic) {
  DesignPoint p{10, 2.5, 100.0};
  EXPECT_DOUBLE_EQ(p.executionTime(), 25.0);
  EXPECT_DOUBLE_EQ(p.areaTime(), 2500.0);
}

TEST(Estimate, BusTotalUsesBusArea) {
  auto r = synth(designs::ewfSource());
  // ewf is the interconnect-heavy design where buses win wiring.
  EXPECT_LT(r.area.busArea, r.area.muxArea);
  EXPECT_LT(r.area.totalBus(), r.area.total());
}

TEST(Estimate, MoreUnitsMoreFuArea) {
  auto r1 = synth(designs::fir8Source(), 1);
  auto r4 = synth(designs::fir8Source(), 4);
  EXPECT_GT(r4.area.fuArea, r1.area.fuArea);
}

}  // namespace
}  // namespace mphls
