// Elliptic-wave-filter study: scheduler shoot-out on the era's standard
// DSP workload, plus an optimization-level ablation.
//
//   $ ./ewf_pipeline
//
// The EWF's long re-convergent adder chains are what separated schedulers
// in the late-80s literature. This example runs every scheduling algorithm
// the tutorial describes on the same filter body and reports steps and
// functional-unit usage side by side — Section 3.1's comparison made
// executable — and then shows what each high-level transformation buys.
#include <cstdio>
#include <iostream>

#include "core/designs.h"
#include "core/synthesizer.h"
#include "opt/pass.h"
#include "lang/frontend.h"

using namespace mphls;

int main() {
  std::cout << "=== elliptic wave filter: scheduler comparison ===\n\n";

  struct Row {
    std::string name;
    SynthesisOptions opts;
  };
  std::vector<Row> rows;
  {
    SynthesisOptions o;
    o.scheduler = SchedulerKind::Serial;
    rows.push_back({"serial (trivial)", o});
  }
  for (int n : {1, 2, 3}) {
    SynthesisOptions o;
    o.scheduler = SchedulerKind::Asap;
    o.resources = ResourceLimits::universalSet(n);
    rows.push_back({"asap " + std::to_string(n) + "fu", o});
  }
  for (int n : {1, 2, 3}) {
    SynthesisOptions o;
    o.scheduler = SchedulerKind::List;
    o.resources = ResourceLimits::universalSet(n);
    rows.push_back({"list " + std::to_string(n) + "fu", o});
  }
  {
    SynthesisOptions o;
    o.scheduler = SchedulerKind::Freedom;
    rows.push_back({"freedom (MAHA)", o});
  }
  {
    SynthesisOptions o;
    o.scheduler = SchedulerKind::ForceDirected;
    rows.push_back({"force-directed", o});
  }
  {
    SynthesisOptions o;
    o.scheduler = SchedulerKind::Transform;
    o.resources = ResourceLimits::universalSet(2);
    rows.push_back({"transformational 2fu", o});
  }

  std::printf("%-22s %8s %8s %10s %12s\n", "scheduler", "steps", "regs",
              "fus", "area");
  for (const auto& row : rows) {
    Synthesizer synth(row.opts);
    SynthesisResult r = synth.synthesizeSource(designs::ewfSource());
    std::printf("%-22s %8d %8d %10d %12.1f\n", row.name.c_str(),
                r.staticLatency(), r.design.regs.numRegs,
                r.design.binding.numFus(), r.area.total());
  }

  std::cout << "\n=== what each optimization level buys (ops in the CDFG) ===\n";
  for (auto lvl : {OptLevel::None, OptLevel::Standard, OptLevel::Aggressive}) {
    Function fn = compileBdlOrThrow(designs::ewfSource());
    if (lvl == OptLevel::Standard) {
      auto pm = PassManager::standardPipeline();
      pm.run(fn);
    } else if (lvl == OptLevel::Aggressive) {
      auto pm = PassManager::aggressivePipeline();
      pm.run(fn);
    }
    const char* name = lvl == OptLevel::None       ? "none"
                       : lvl == OptLevel::Standard ? "standard"
                                                   : "aggressive";
    std::printf("  %-10s: %4zu live ops, %4zu FU ops, %2zu blocks\n", name,
                fn.numLiveOps(), fn.numRealOps(), fn.numBlocks());
  }
  return 0;
}
