// Design-space exploration of the HAL differential-equation benchmark —
// the workload of the paper's force-directed-scheduling reference [22].
//
//   $ ./diffeq_explore
//
// Demonstrates the paper's Section 1.2 motivation ("the ability to search
// the design space"): the same behavior is synthesized under a sweep of
// resource limits (Facet/Flamel style), under a Chippe-style feedback
// iteration toward a latency target, and under a HAL-style time-constraint
// sweep; the area/latency trade-off curve is printed with its Pareto
// points marked.
#include <cstdio>
#include <iostream>

#include "core/designs.h"
#include "core/dse.h"

using namespace mphls;

namespace {

void printPoints(const char* title, const std::vector<DsePoint>& points) {
  std::cout << "\n" << title << "\n";
  std::printf("  %-12s %10s %12s %12s %8s\n", "point", "latency",
              "cycle time", "area", "pareto");
  for (const auto& p : points) {
    std::printf("  %-12s %10d %12.2f %12.1f %8s\n", p.label.c_str(),
                p.latencySteps, p.cycleTime, p.area, p.pareto ? "*" : "");
  }
}

}  // namespace

int main() {
  std::cout << "=== design-space exploration: HAL differential equation ===\n";
  std::cout << "(y'' + 3xy' + 3y = 0 integrated by forward Euler; the\n"
               " paper's Section 3.1.1 scheduling/allocation interactions)\n";

  auto sweep = exploreResourceSweep(designs::diffeqSource(), 5);
  printPoints("fixed-limit sweep (list scheduling, 1..5 universal FUs):",
              sweep);

  int target = sweep[2].latencySteps;
  auto chippe = chippeIterate(designs::diffeqSource(), target);
  std::cout << "\nChippe-style feedback toward latency <= " << target
            << " steps:\n";
  for (const auto& p : chippe)
    std::cout << "  try " << p.label << " -> " << p.latencySteps
              << " steps\n";
  std::cout << "  accepted: " << chippe.back().label << "\n";

  auto times = exploreTimeSweep(designs::diffeqSource(), 4);
  printPoints("HAL-style time-constraint sweep (force-directed):", times);

  // Executive summary: fastest, smallest, best area-time.
  const DsePoint* fastest = &sweep[0];
  const DsePoint* smallest = &sweep[0];
  const DsePoint* best = &sweep[0];
  for (const auto& p : sweep) {
    if (p.latencySteps < fastest->latencySteps) fastest = &p;
    if (p.area < smallest->area) smallest = &p;
    if (p.executionTime() * p.area < best->executionTime() * best->area)
      best = &p;
  }
  std::cout << "\nsummary: fastest = " << fastest->label
            << ", smallest = " << smallest->label
            << ", best area-time = " << best->label << "\n";
  return 0;
}
