// Quickstart: synthesize the paper's square-root example end to end and
// inspect every artifact the flow produces.
//
//   $ ./quickstart
//
// Walks the full pipeline of the tutorial's Section 2 on Fig. 1's design:
// behavioral BDL in; optimized CDFG, schedule, datapath allocation,
// controller and Verilog out — then proves the RTL computes the same
// function as the specification.
#include <cmath>
#include <iostream>

#include "core/designs.h"
#include "core/synthesizer.h"
#include "ir/dot.h"
#include "rtl/rtlsim.h"
#include "rtl/verilog.h"
#include "sched/schedule.h"

using namespace mphls;

int main() {
  std::cout << "=== mphls quickstart: the DAC'88 tutorial sqrt design ===\n\n";
  std::cout << "Behavioral specification (BDL):\n"
            << designs::sqrtSource() << "\n";

  // Configure the flow: list scheduling with two universal functional
  // units — the configuration of the paper's Fig. 2 fast schedule.
  SynthesisOptions opts;
  opts.scheduler = SchedulerKind::List;
  opts.resources = ResourceLimits::universalSet(2);
  Synthesizer synth(opts);
  SynthesisResult result = synth.synthesizeSource(designs::sqrtSource());
  const RtlDesign& d = result.design;

  std::cout << "--- compiled + optimized CDFG ---\n" << d.fn.dump() << "\n";

  std::cout << "--- schedule (list, 2 universal FUs) ---\n";
  for (const auto& blk : d.fn.blocks()) {
    BlockDeps deps(d.fn, blk);
    std::cout << blk.name << " (" << d.sched.of(blk.id).numSteps
              << " steps):\n"
              << renderBlockSchedule(deps, d.sched.of(blk.id));
  }

  std::cout << "\n--- datapath ---\n";
  std::cout << "registers: " << d.regs.numRegs << "\n";
  std::cout << "functional units: " << d.binding.numFus() << "\n";
  for (int f = 0; f < d.binding.numFus(); ++f) {
    const FuInstance& fu = d.binding.fus[(std::size_t)f];
    std::cout << "  fu" << f << " = " << d.lib.component(fu.comp).name
              << " w" << fu.width << " {";
    for (OpKind k : fu.kinds) std::cout << " " << opName(k);
    std::cout << " }\n";
  }
  std::cout << "mux 2:1 equivalents: " << d.ic.mux2to1Count
            << "  (area " << d.ic.muxArea << ")\n";
  std::cout << "bus alternative: " << d.ic.numBuses << " buses (area "
            << d.ic.busArea << ")\n";

  std::cout << "\n--- controller ---\n" << d.ctrl.describe();
  std::cout << "FSM: " << d.ctrl.numStates() << " states, "
            << result.fsm.stateBits << " state bits, minimized PLA "
            << result.fsm.minimizedLogic.termCount() << " terms\n";
  std::cout << "microcode: horizontal " << result.microHorizontal.wordWidth
            << "b vs encoded " << result.microEncoded.wordWidth
            << "b per word\n";

  std::cout << "\n--- estimates ---\n";
  std::cout << "area: FU " << result.area.fuArea << " + reg "
            << result.area.regArea << " + mux " << result.area.muxArea
            << " + control " << result.area.controlArea << " = "
            << result.area.total() << "\n";
  std::cout << "cycle time: " << result.timing.cycleTime << " (latency "
            << result.latencyFor({{"x", 2048}})
            << " control steps for x=0.5)\n";

  std::cout << "\n--- verification: RTL vs behavior ---\n";
  bool allOk = true;
  for (double xv : {0.0625, 0.1, 0.25, 0.5, 0.9, 1.0}) {
    auto raw = (std::uint64_t)(xv * 4096.0);
    std::string msg = verifyAgainstBehavior(result, {{"x", raw}});
    RtlSimulator sim(d);
    auto res = sim.run({{"x", raw}});
    double got = (double)res.outputs.at("y") / 4096.0;
    std::cout << "  sqrt(" << xv << ") = " << got << "  (ref "
              << std::sqrt(xv) << ")  "
              << (msg.empty() ? "RTL==behavior" : msg) << "\n";
    allOk = allOk && msg.empty();
  }

  std::cout << "\n--- generated Verilog (head) ---\n";
  std::string v = emitVerilog(d);
  std::cout << v.substr(0, v.find("  // data-path registers")) << "...\n";

  std::cout << "\n" << (allOk ? "OK" : "MISMATCH") << "\n";
  return allOk ? 0 : 1;
}
