// Synthesis + exhaustive verification of a GCD processor, and Verilog
// output to a file.
//
//   $ ./gcd_verify [out.v]
//
// GCD exercises what the paper's toy examples do not: data-dependent
// control flow (the loop trip count depends on the inputs), a modulo
// operator, and an algorithm where the datapath is trivial but control
// dominates. The example sweeps several hundred input pairs comparing the
// synthesized RTL against Euclid's algorithm computed in C++ — the
// "design verification" discipline of the paper's Section 4.
#include <fstream>
#include <iostream>
#include <numeric>

#include "core/designs.h"
#include "core/synthesizer.h"
#include "rtl/rtlsim.h"
#include "rtl/verilog.h"

using namespace mphls;

int main(int argc, char** argv) {
  std::cout << "=== gcd processor: synthesize + verify ===\n";

  SynthesisOptions opts;
  opts.scheduler = SchedulerKind::List;
  opts.resources = ResourceLimits::universalSet(1);
  Synthesizer synth(opts);
  SynthesisResult r = synth.synthesizeSource(designs::gcdSource());

  std::cout << "controller: " << r.design.ctrl.numStates() << " states; "
            << "datapath: " << r.design.regs.numRegs << " registers, "
            << r.design.binding.numFus() << " FUs; area "
            << r.area.total() << "\n";

  RtlSimulator sim(r.design);
  long tested = 0, failed = 0;
  long totalCycles = 0;
  std::uint64_t seed = 0xC0FFEE;
  for (int trial = 0; trial < 400; ++trial) {
    seed = seed * 6364136223846793005ull + 1442695040888963407ull;
    std::uint64_t a = (seed >> 24) & 0xFFFF;
    seed = seed * 6364136223846793005ull + 1442695040888963407ull;
    std::uint64_t b = (seed >> 24) & 0xFFFF;
    auto res = sim.run({{"a0", a}, {"b0", b}});
    if (!res.finished) {
      ++failed;
      continue;
    }
    std::uint64_t want = std::gcd(a, b);
    if (res.outputs.at("g") != want) {
      std::cout << "  MISMATCH gcd(" << a << ", " << b << ") = "
                << res.outputs.at("g") << ", want " << want << "\n";
      ++failed;
    }
    totalCycles += res.cycles;
    ++tested;
  }
  std::cout << "verified " << tested << " random input pairs, " << failed
            << " failures; mean latency "
            << (tested ? totalCycles / tested : 0) << " cycles\n";

  const char* path = argc > 1 ? argv[1] : "gcd.v";
  std::ofstream out(path);
  out << emitVerilog(r.design);
  std::cout << "wrote Verilog to " << path << "\n";
  return failed == 0 ? 0 : 1;
}
