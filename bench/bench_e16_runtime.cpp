// E16 — algorithm runtimes (google-benchmark).
//
// Section 2: "Many synthesis subtasks, including scheduling with a
// limitation on the number of resources and register allocation given a
// fixed number of registers, are known to be NP-hard." The polynomial
// heuristics (list scheduling, left edge, greedy clique) scale gracefully
// with graph size; exhaustive branch-and-bound blows up — measured here.
#include <benchmark/benchmark.h>

#include "alloc/lifetime.h"
#include "alloc/reg_alloc.h"
#include "bench/bench_util.h"
#include "core/designs.h"
#include "core/synthesizer.h"
#include "sched/bnb.h"
#include "sched/force_directed.h"
#include "sched/list_sched.h"
#include "sched/sched_util.h"

using namespace mphls;

namespace {

void BM_ListSchedule(benchmark::State& state) {
  Function fn = bench::randomDfg((std::size_t)state.range(0), 42);
  BlockDeps deps(fn, fn.block(fn.entry()));
  auto limits = ResourceLimits::universalSet(2);
  for (auto _ : state) {
    auto s = listSchedule(deps, limits, ListPriority::PathLength);
    benchmark::DoNotOptimize(s.numSteps);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ListSchedule)->RangeMultiplier(2)->Range(8, 256)->Complexity();

void BM_ForceDirected(benchmark::State& state) {
  Function fn = bench::randomDfg((std::size_t)state.range(0), 42);
  BlockDeps deps(fn, fn.block(fn.entry()));
  for (auto _ : state) {
    auto s = forceDirectedSchedule(deps, 0);
    benchmark::DoNotOptimize(s.numSteps);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_ForceDirected)->RangeMultiplier(2)->Range(8, 64)->Complexity();

void BM_BranchBound(benchmark::State& state) {
  Function fn = bench::randomDfg((std::size_t)state.range(0), 42);
  BlockDeps deps(fn, fn.block(fn.entry()));
  auto limits = ResourceLimits::universalSet(2);
  for (auto _ : state) {
    auto r = branchBoundSchedule(deps, limits, 2'000'000);
    benchmark::DoNotOptimize(r.schedule.numSteps);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_BranchBound)->DenseRange(8, 20, 4);

void BM_LeftEdge(benchmark::State& state) {
  Function fn = bench::randomDfg((std::size_t)state.range(0), 42);
  auto limits = ResourceLimits::universalSet(2);
  Schedule sched = scheduleFunction(fn, [&](const BlockDeps& d) {
    return listSchedule(d, limits, ListPriority::PathLength);
  });
  LifetimeInfo lt = computeLifetimes(fn, sched);
  for (auto _ : state) {
    auto regs = allocateRegisters(lt, RegAllocMethod::LeftEdge);
    benchmark::DoNotOptimize(regs.numRegs);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_LeftEdge)->RangeMultiplier(2)->Range(8, 256)->Complexity();

void BM_CliqueRegAlloc(benchmark::State& state) {
  Function fn = bench::randomDfg((std::size_t)state.range(0), 42);
  auto limits = ResourceLimits::universalSet(2);
  Schedule sched = scheduleFunction(fn, [&](const BlockDeps& d) {
    return listSchedule(d, limits, ListPriority::PathLength);
  });
  LifetimeInfo lt = computeLifetimes(fn, sched);
  for (auto _ : state) {
    auto regs = allocateRegisters(lt, RegAllocMethod::Clique);
    benchmark::DoNotOptimize(regs.numRegs);
  }
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_CliqueRegAlloc)->RangeMultiplier(2)->Range(8, 128)->Complexity();

void BM_FullSynthesis(benchmark::State& state) {
  const auto& d = designs::all()[(std::size_t)state.range(0)];
  SynthesisOptions o;
  o.scheduler = SchedulerKind::List;
  o.resources = ResourceLimits::universalSet(2);
  for (auto _ : state) {
    Synthesizer synth(o);
    auto r = synth.synthesizeSource(d.source);
    benchmark::DoNotOptimize(r.staticLatency());
  }
  state.SetLabel(d.name);
}
BENCHMARK(BM_FullSynthesis)->DenseRange(0, 4);

}  // namespace

BENCHMARK_MAIN();
