// Shared helpers for the experiment benches: table formatting, the paper-vs-
// measured verdict line, and a deterministic random-DFG generator used by
// the scheduler-quality and runtime experiments.
#pragma once

#include <cstdio>
#include <string>

#include "ir/cdfg.h"

namespace mphls::bench {

/// Print a PASS/FAIL verdict comparing a measured value with the paper's.
inline void verdict(const std::string& what, long paper, long measured) {
  std::printf("  %-58s paper=%-6ld measured=%-6ld %s\n", what.c_str(), paper,
              measured, paper == measured ? "PASS" : "FAIL");
}

/// Qualitative verdict: `holds` asserts the paper's claim shape.
inline void claim(const std::string& what, bool holds) {
  std::printf("  %-58s %s\n", what.c_str(), holds ? "HOLDS" : "VIOLATED");
}

/// Deterministic xorshift PRNG (no global state, reproducible benches).
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : s_(seed ? seed : 0x9E3779B97F4A7C15ull) {}
  std::uint64_t next() {
    s_ ^= s_ << 13;
    s_ ^= s_ >> 7;
    s_ ^= s_ << 17;
    return s_;
  }
  /// Uniform in [0, n).
  std::size_t below(std::size_t n) { return (std::size_t)(next() % n); }

 private:
  std::uint64_t s_;
};

/// Build a random straight-line dataflow block: `n` operations drawing
/// operands from ports and earlier results, with a given multiplier share.
/// Every result feeds either a later op or an output write, so nothing is
/// dead. Deterministic in `seed`.
inline Function randomDfg(std::size_t n, std::uint64_t seed,
                          int mulPercent = 25, int width = 16) {
  Rng rng(seed);
  // Sequential appends: GCC 12 -Wrestrict -O3 false positive on the
  // temporary chains (same story as obs/vcd.cpp).
  std::string fname = "rand";
  fname += std::to_string(seed);
  Function fn(fname);
  BlockId b = fn.addBlock("entry");
  std::vector<ValueId> pool;
  for (int i = 0; i < 4; ++i) {
    std::string pname = "p";
    pname += std::to_string(i);
    PortId p = fn.addInput(pname, width);
    pool.push_back(fn.emitRead(b, p));
  }
  std::vector<ValueId> results;
  for (std::size_t i = 0; i < n; ++i) {
    ValueId a = pool[rng.below(pool.size())];
    ValueId c = pool[rng.below(pool.size())];
    OpKind k;
    std::size_t roll = rng.below(100);
    if (roll < (std::size_t)mulPercent) {
      k = OpKind::Mul;
    } else if (roll < (std::size_t)mulPercent + 50) {
      k = OpKind::Add;
    } else if (roll < (std::size_t)mulPercent + 65) {
      k = OpKind::Sub;
    } else {
      k = OpKind::Xor;
    }
    ValueId r = fn.emitBinary(b, k, a, c);
    pool.push_back(r);
    results.push_back(r);
  }
  // Sink the last few results so the block has outputs.
  PortId out = fn.addOutput("y", width);
  ValueId acc = results.back();
  fn.emitWrite(b, out, acc);
  fn.setReturn(b);
  return fn;
}

}  // namespace mphls::bench
