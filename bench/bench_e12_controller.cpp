// E12 — controller styles: hardwired FSM encodings vs microcode.
//
// Section 2: hardwired control ("a control step corresponds to a state in
// the controlling finite state machine ... state encoding and optimization
// of the combinational logic") against microcoded control ("the
// microprogram can be optimized using encoding techniques for the
// microcontrol word"). Three state encodings and two microword formats on
// every design.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/designs.h"
#include "core/synthesizer.h"
#include "ctrl/encode.h"

using namespace mphls;

int main() {
  std::printf("== E12: controller implementation styles ==\n\n");
  std::printf(
      "%-8s %7s | %22s | %22s | %22s | %12s %12s\n", "", "", "binary",
      "gray", "one-hot", "uCode-horiz", "uCode-enc");
  std::printf("%-8s %7s | %7s %6s %7s | %7s %6s %7s | %7s %6s %7s | %12s %12s\n",
              "design", "states", "bits", "terms", "area", "bits", "terms",
              "area", "bits", "terms", "area", "bits total", "bits total");

  bool encodedAlwaysNarrower = true;
  bool minNeverWorse = true;
  for (const auto& d : designs::all()) {
    SynthesisOptions o;
    o.scheduler = SchedulerKind::List;
    o.resources = ResourceLimits::universalSet(2);
    Synthesizer synth(o);
    SynthesisResult r = synth.synthesizeSource(d.source);

    std::printf("%-8s %7zu |", d.name, r.design.ctrl.numStates());
    for (auto enc : {StateEncoding::Binary, StateEncoding::Gray,
                     StateEncoding::OneHot}) {
      auto e = encodeController(r.design.ctrl, r.design.ic,
                                r.design.binding, enc);
      std::printf(" %7d %6d %7.0f |", e.stateBits,
                  e.minimizedLogic.termCount(), e.minimizedLogic.plaArea());
      if (e.minimizedLogic.termCount() > e.logic.termCount())
        minNeverWorse = false;
    }
    std::printf(" %12.0f %12.0f\n", r.microHorizontal.storeBits(),
                r.microEncoded.storeBits());
    if (r.microEncoded.wordWidth >= r.microHorizontal.wordWidth)
      encodedAlwaysNarrower = false;
  }
  std::printf("\n");
  bench::claim("encoded microwords always narrower than horizontal",
               encodedAlwaysNarrower);
  bench::claim("logic minimization never increases product terms",
               minNeverWorse);
  return 0;
}
