// E13 — design-space exploration.
//
// Section 1.2 ("the ability to search the design space") and Section
// 3.1.1's scheduling/allocation interaction styles: fixed-limit sweep,
// Chippe-style feedback, and HAL-style time-constrained scheduling, with
// the area/latency curve and its Pareto set for three designs.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/designs.h"
#include "core/dse.h"

using namespace mphls;

int main() {
  std::printf("== E13: design-space exploration ==\n");

  bool monotoneLatency = true;
  for (const char* name : {"sqrt", "diffeq", "ewf"}) {
    const char* src = nullptr;
    for (const auto& d : designs::all())
      if (std::string(d.name) == name) src = d.source;

    std::printf("\n--- %s: fixed-limit sweep (1..5 universal FUs) ---\n",
                name);
    auto sweep = exploreResourceSweep(src, 5);
    std::printf("  %-8s %8s %12s %12s %8s\n", "FUs", "latency", "cycle",
                "area", "pareto");
    for (const auto& p : sweep) {
      std::printf("  %-8d %8d %12.2f %12.1f %8s\n", p.limit,
                  p.latencySteps, p.cycleTime, p.area, p.pareto ? "*" : "");
    }
    for (std::size_t i = 1; i < sweep.size(); ++i)
      if (sweep[i].latencySteps > sweep[i - 1].latencySteps)
        monotoneLatency = false;

    int target = sweep[sweep.size() / 2].latencySteps;
    auto chippe = chippeIterate(src, target);
    std::printf("  Chippe feedback toward <= %d steps:", target);
    for (const auto& p : chippe) std::printf(" %d->%d", p.limit, p.latencySteps);
    std::printf("  (accepted %s)\n", chippe.back().label.c_str());

    auto times = exploreTimeSweep(src, 3);
    std::printf("  HAL time sweep:");
    for (const auto& p : times)
      std::printf("  %d steps/%.0f area", p.limit, p.area);
    std::printf("\n");
  }

  std::printf("\n");
  bench::claim("latency never increases with more functional units",
               monotoneLatency);
  return 0;
}
