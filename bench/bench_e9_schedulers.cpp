// E9 — scheduler comparison across real designs.
//
// Section 3's technique survey made executable: every scheduling algorithm
// the tutorial describes runs on every built-in design; the table reports
// schedule length and the functional units each schedule implies, plus a
// list-priority ablation (BUD's path length vs mobility vs Elf/ISYN's
// urgency vs no priority).
#include <cstdio>

#include "bench/bench_util.h"
#include "core/designs.h"
#include "core/synthesizer.h"

using namespace mphls;

int main() {
  std::printf("== E9: scheduler comparison on real designs ==\n\n");

  struct Cfg {
    std::string name;
    SynthesisOptions opts;
  };
  std::vector<Cfg> cfgs;
  {
    SynthesisOptions o;
    o.scheduler = SchedulerKind::Serial;
    cfgs.push_back({"serial", o});
  }
  for (int n : {1, 2}) {
    SynthesisOptions o;
    o.scheduler = SchedulerKind::Asap;
    o.resources = ResourceLimits::universalSet(n);
    cfgs.push_back({"asap-" + std::to_string(n), o});
    SynthesisOptions l = o;
    l.scheduler = SchedulerKind::List;
    cfgs.push_back({"list-" + std::to_string(n), l});
  }
  {
    SynthesisOptions o;
    o.scheduler = SchedulerKind::Freedom;
    cfgs.push_back({"freedom", o});
  }
  {
    SynthesisOptions o;
    o.scheduler = SchedulerKind::ForceDirected;
    cfgs.push_back({"force-dir", o});
  }
  {
    SynthesisOptions o;
    o.scheduler = SchedulerKind::Transform;
    o.resources = ResourceLimits::universalSet(2);
    cfgs.push_back({"transf-2", o});
  }
  {
    SynthesisOptions o;
    o.scheduler = SchedulerKind::BranchBound;
    o.resources = ResourceLimits::universalSet(2);
    cfgs.push_back({"b&b-2", o});
  }

  std::printf("schedule length in control steps (static, one pass):\n");
  std::printf("%-10s", "design");
  for (const auto& c : cfgs) std::printf("%10s", c.name.c_str());
  std::printf("\n");
  for (const auto& d : designs::all()) {
    std::printf("%-10s", d.name);
    for (const auto& c : cfgs) {
      Synthesizer synth(c.opts);
      SynthesisResult r = synth.synthesizeSource(d.source);
      std::printf("%10d", r.staticLatency());
    }
    std::printf("\n");
  }

  std::printf("\nlist-priority ablation (2 universal FUs):\n");
  std::printf("%-10s", "design");
  for (auto p : {ListPriority::PathLength, ListPriority::Mobility,
                 ListPriority::Urgency, ListPriority::ProgramOrder})
    std::printf("%16s", std::string(listPriorityName(p)).c_str());
  std::printf("\n");
  for (const auto& d : designs::all()) {
    std::printf("%-10s", d.name);
    for (auto p : {ListPriority::PathLength, ListPriority::Mobility,
                   ListPriority::Urgency, ListPriority::ProgramOrder}) {
      SynthesisOptions o;
      o.scheduler = SchedulerKind::List;
      o.resources = ResourceLimits::universalSet(2);
      o.listPriority = p;
      Synthesizer synth(o);
      std::printf("%16d", synth.synthesizeSource(d.source).staticLatency());
    }
    std::printf("\n");
  }

  // Shape claims.
  std::printf("\n");
  {
    SynthesisOptions serialO, listO;
    serialO.scheduler = SchedulerKind::Serial;
    listO.scheduler = SchedulerKind::List;
    listO.resources = ResourceLimits::universalSet(2);
    bool listBeatsSerial = true;
    for (const auto& d : designs::all()) {
      Synthesizer s1(serialO), s2(listO);
      if (s2.synthesizeSource(d.source).staticLatency() >
          s1.synthesizeSource(d.source).staticLatency())
        listBeatsSerial = false;
    }
    bench::claim("list-2FU never slower than the trivial serial schedule",
                 listBeatsSerial);
  }
  return 0;
}
