// E15 — end-to-end behavior preservation ("design verification").
//
// Section 4: "Design verification involves the proof that a detailed
// design implements the exact design stated in the specification." Every
// built-in design is synthesized under several configurations and its RTL
// structure is simulated cycle-accurately against the behavioral
// interpreter over a randomized stimulus sweep; any divergence is a bug in
// some synthesis step.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/designs.h"
#include "core/synthesizer.h"
#include "rtl/rtlsim.h"

using namespace mphls;

int main() {
  std::printf("== E15: RTL vs behavioral verification sweep ==\n\n");

  struct Cfg {
    const char* name;
    SynthesisOptions opts;
  };
  std::vector<Cfg> cfgs;
  {
    SynthesisOptions o;
    o.scheduler = SchedulerKind::Serial;
    o.opt = OptLevel::None;
    cfgs.push_back({"serial/none", o});
  }
  {
    SynthesisOptions o;
    o.scheduler = SchedulerKind::List;
    o.resources = ResourceLimits::universalSet(2);
    cfgs.push_back({"list-2/std", o});
  }
  {
    SynthesisOptions o;
    o.scheduler = SchedulerKind::List;
    o.resources = ResourceLimits::universalSet(3);
    o.opt = OptLevel::Aggressive;
    o.fuMethod = FuAllocMethod::Clique;
    o.regMethod = RegAllocMethod::Clique;
    cfgs.push_back({"list-3/aggr/clique", o});
  }

  std::printf("%-10s %-20s %8s %8s %10s\n", "design", "config", "tests",
              "passed", "cycles/run");
  long grandTests = 0, grandPassed = 0;
  for (const auto& d : designs::all()) {
    for (const auto& c : cfgs) {
      Synthesizer synth(c.opts);
      SynthesisResult r = synth.synthesizeSource(d.source);
      RtlSimulator sim(r.design);
      long tests = 0, passed = 0, cycles = 0;
      std::uint64_t seed = 0xABCDEF;
      for (int trial = 0; trial < 25; ++trial) {
        auto inputs = d.sampleInputs;
        if (trial > 0) {
          for (auto& [k, v] : inputs) {
            seed = seed * 6364136223846793005ull + 1442695040888963407ull;
            v = std::max<std::uint64_t>(1, (v + (seed >> 52)) & 0x7FF);
          }
        }
        std::string msg = verifyAgainstBehavior(r, inputs);
        ++tests;
        if (msg.empty()) {
          ++passed;
          cycles += sim.run(inputs).cycles;
        }
      }
      std::printf("%-10s %-20s %8ld %8ld %10ld\n", d.name, c.name, tests,
                  passed, passed ? cycles / passed : -1);
      grandTests += tests;
      grandPassed += passed;
    }
  }
  std::printf("\n");
  bench::verdict("verification sweep failures", 0,
                 grandTests - grandPassed);
  std::printf("  (%ld stimulus/config/design combinations checked)\n",
              grandTests);
  return grandTests == grandPassed ? 0 : 1;
}
