// E18 — pipeline synthesis (Sehwa).
//
// Section 3.3: "Synthesis of pipelined data paths is a design domain which
// has now been characterized by a foundation of theory [20] and
// implemented by the program Sehwa." Sehwa's signature output is the
// cost/performance curve of a pipelined datapath: each initiation interval
// (II) trades throughput against the number of functional units the
// overlapped samples demand. Regenerated here for the FIR filter body —
// the classic pipelining workload.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/designs.h"
#include "lang/frontend.h"
#include "lib/library.h"
#include "opt/pass.h"
#include "sched/pipeline.h"

using namespace mphls;

int main() {
  std::printf("== E18: Sehwa-style pipeline cost/performance curve ==\n\n");

  Function fn = compileBdlOrThrow(designs::fir8Source());
  optimize(fn);
  BlockDeps deps(fn, fn.block(fn.entry()));
  HwLibrary lib = HwLibrary::defaultLibrary();

  auto curve = explorePipelines(deps);
  std::printf("8-tap FIR body, one new sample every II steps:\n\n");
  std::printf("  %-4s %10s %10s %8s %8s %12s %14s\n", "II", "throughput",
              "latency", "mults", "adders", "FU area", "area/sample-rate");
  bool allValid = true;
  int prevMuls = INT32_MAX;
  bool monotone = true;
  for (const auto& pr : curve) {
    if (!pr.feasible) continue;
    allValid = allValid && validatePipelineSchedule(deps, pr).empty();
    int muls = pr.unitsRequired.count(FuClass::Multiplier)
                   ? pr.unitsRequired.at(FuClass::Multiplier)
                   : 0;
    int adds = pr.unitsRequired.count(FuClass::Adder)
                   ? pr.unitsRequired.at(FuClass::Adder)
                   : 0;
    double area =
        muls * lib.component(lib.cheapestFor(OpKind::Mul, 32)).area(32) +
        adds * lib.component(lib.cheapestFor(OpKind::Add, 32)).area(32);
    std::printf("  %-4d %10.3f %10d %8d %8d %12.1f %14.1f\n",
                pr.initiationInterval, pr.throughput(),
                pr.schedule.numSteps, muls, adds, area,
                area * pr.initiationInterval);
    if (muls > prevMuls) monotone = false;
    prevMuls = muls;
  }
  std::printf("\n");
  bench::claim("every pipeline schedule valid (modulo conflicts respected)",
               allValid);
  bench::claim("unit demand decreases monotonically with II (Sehwa curve)",
               monotone);
  bench::claim(
      "fully sequential II equals one multiplier (maximal sharing)",
      curve.back().feasible &&
          curve.back().unitsRequired.at(FuClass::Multiplier) == 1);
  return 0;
}
