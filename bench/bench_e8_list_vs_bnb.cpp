// E8 — list scheduling vs branch-and-bound optimum.
//
// Section 3.1.2: "Studies have shown that this form of scheduling works
// nearly as well as branch-and-bound scheduling in microcode optimization
// [6]" (Davidson et al.). Reproduced over a population of random dataflow
// graphs and the built-in designs: the list schedule's length is compared
// with the proven optimum from exhaustive branch-and-bound.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/designs.h"
#include "lang/frontend.h"
#include "sched/bnb.h"
#include "sched/list_sched.h"

using namespace mphls;

int main() {
  std::printf("== E8: list scheduling vs branch-and-bound optimum ==\n\n");
  auto limits = ResourceLimits::universalSet(2);

  long total = 0, optimalHits = 0, provedOptimal = 0;
  long listSum = 0, bnbSum = 0;
  int worstGap = 0;

  std::printf("--- random dataflow graphs (12..20 ops, 2 universal FUs) ---\n");
  std::printf("  %-10s %6s %6s %6s %10s\n", "graph", "list", "b&b", "gap",
              "proved");
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    std::size_t n = 12 + (std::size_t)(seed % 9);
    Function fn = bench::randomDfg(n, seed * 7919);
    BlockDeps deps(fn, fn.block(fn.entry()));
    BlockSchedule ls = listSchedule(deps, limits, ListPriority::PathLength);
    BnbResult br = branchBoundSchedule(deps, limits, 500000);
    int gap = ls.numSteps - br.schedule.numSteps;
    std::printf("  seed %-5llu %6d %6d %6d %10s\n",
                (unsigned long long)seed, ls.numSteps, br.schedule.numSteps,
                gap, br.optimal ? "yes" : "budget");
    ++total;
    listSum += ls.numSteps;
    bnbSum += br.schedule.numSteps;
    if (gap == 0) ++optimalHits;
    if (br.optimal) ++provedOptimal;
    worstGap = std::max(worstGap, gap);
  }

  std::printf("\n--- built-in designs (per block) ---\n");
  for (const auto& d : designs::all()) {
    Function fn = compileBdlOrThrow(d.source);
    for (const auto& blk : fn.blocks()) {
      if (blk.ops.empty()) continue;
      BlockDeps deps(fn, blk);
      BlockSchedule ls = listSchedule(deps, limits, ListPriority::PathLength);
      BnbResult br = branchBoundSchedule(deps, limits, 500000);
      ++total;
      listSum += ls.numSteps;
      bnbSum += br.schedule.numSteps;
      if (ls.numSteps == br.schedule.numSteps) ++optimalHits;
      if (br.optimal) ++provedOptimal;
      worstGap = std::max(worstGap, ls.numSteps - br.schedule.numSteps);
      std::printf("  %-8s %-14s list=%2d b&b=%2d%s\n", d.name,
                  blk.name.c_str(), ls.numSteps, br.schedule.numSteps,
                  br.optimal ? "" : " (budget)");
    }
  }

  std::printf("\nsummary over %ld blocks:\n", total);
  std::printf("  list total steps %ld vs optimum %ld (%.1f%% overhead)\n",
              listSum, bnbSum,
              100.0 * (double)(listSum - bnbSum) / (double)bnbSum);
  std::printf("  list hit the optimum on %ld/%ld blocks (worst gap %d)\n",
              optimalHits, total, worstGap);
  bench::claim("list scheduling works nearly as well as branch-and-bound",
               (double)(listSum - bnbSum) / (double)bnbSum < 0.05);
  return 0;
}
