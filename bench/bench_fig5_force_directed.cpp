// E5 / Fig. 5 — "A Distribution Graph".
//
// "Addition a1 must be scheduled in step 1, so it contributes 1 to that
// step. Similarly addition a2 adds 1 to control step 2. Addition a3 could
// be scheduled in either step 2 or step 3, so it contributes 1/2 to each
// ... a3 would first be scheduled into step 3, since that would have the
// greatest effect in balancing the graph."
// (Steps are numbered from 0 here; the paper numbers from 1.)
#include <cstdio>

#include "bench/bench_util.h"
#include "sched/force_directed.h"
#include "sched/schedule.h"

using namespace mphls;

namespace {

/// a1 -> a2 -> m (a multiply pinning the chain), a3 dependent on a1; time
/// constraint three steps.
Function buildGraph() {
  Function fn("fig5");
  BlockId b = fn.addBlock("entry");
  ValueId va = fn.emitRead(b, fn.addInput("a", 8));
  ValueId vb = fn.emitRead(b, fn.addInput("b", 8));
  ValueId vc = fn.emitRead(b, fn.addInput("c", 8));
  ValueId a1 = fn.emitBinary(b, OpKind::Add, va, vb);
  ValueId a2 = fn.emitBinary(b, OpKind::Add, a1, vc);
  ValueId a3 = fn.emitBinary(b, OpKind::Add, a1, va);
  ValueId m = fn.emitBinary(b, OpKind::Mul, a2, vc);
  fn.emitWrite(b, fn.addOutput("y", 8), m);
  fn.emitWrite(b, fn.addOutput("z", 8), a3);
  fn.setReturn(b);
  return fn;
}

}  // namespace

int main() {
  std::printf("== E5 / Fig. 5: distribution graph + force-directed ==\n\n");
  Function fn = buildGraph();
  BlockDeps deps(fn, fn.block(fn.entry()));

  auto dgs = distributionGraphs(deps, 3);
  const DistributionGraph& addDg = dgs.at(FuClass::Adder);
  std::printf("addition distribution graph under a 3-step constraint:\n");
  for (int s = 0; s < 3; ++s) {
    std::printf("  step %d: %.2f  ", s, addDg.at(s));
    int bars = (int)(addDg.at(s) * 8 + 0.5);
    for (int k = 0; k < bars; ++k) std::printf("#");
    std::printf("\n");
  }
  std::printf("\n");
  bench::claim("DG matches the paper's {1, 1.5, 0.5}",
               addDg.at(0) == 1.0 && addDg.at(1) == 1.5 && addDg.at(2) == 0.5);

  BlockSchedule s = forceDirectedSchedule(deps, 3);
  std::printf("\nforce-directed schedule:\n%s\n",
              renderBlockSchedule(deps, s).c_str());
  auto peak = peakUsage(deps, s);
  bench::verdict("adders required after balancing", 1,
                 peak.at(FuClass::Adder));
  bench::claim("a3 placed to balance (last step)", [&] {
    // a3 is the add with slack; it must not share a step with a1 or a2.
    std::vector<int> addSteps;
    for (std::size_t i = 0; i < deps.numOps(); ++i)
      if (deps.op(i).kind == OpKind::Add) addSteps.push_back(s.step[i]);
    return addSteps.size() == 3 && addSteps[0] != addSteps[1] &&
           addSteps[1] != addSteps[2] && addSteps[0] != addSteps[2];
  }());
  return 0;
}
