// E11 — interconnect style: multiplexers vs buses.
//
// Section 2: "The most simple type of communication path allocation is
// based only on multiplexers. Buses, which can be seen as distributed
// multiplexers, offer the advantage of requiring less wiring, but they may
// be slower than multiplexers. Depending on the application, a combination
// of both may be the best solution." Both structures are built from the
// same transfer set for every design and compared on area and cycle time.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/designs.h"
#include "core/synthesizer.h"

using namespace mphls;

int main() {
  std::printf("== E11: mux-based vs bus-based interconnect ==\n\n");
  std::printf("%-10s %10s %10s %12s %12s %12s %12s\n", "design",
              "transfers", "buses", "mux area", "bus area", "mux cycle",
              "bus cycle");

  int muxWinsTime = 0, n = 0;
  double biggestTransfers = -1, smallestTransfers = 1e18;
  bool busWinsBiggest = false, muxWinsSmallest = false;
  for (const auto& d : designs::all()) {
    SynthesisOptions o;
    o.scheduler = SchedulerKind::List;
    o.resources = ResourceLimits::universalSet(2);
    Synthesizer synth(o);
    SynthesisResult r = synth.synthesizeSource(d.source);
    std::printf("%-10s %10zu %10d %12.1f %12.1f %12.2f %12.2f\n", d.name,
                r.design.ic.transfers.size(), r.design.ic.numBuses,
                r.design.ic.muxArea, r.design.ic.busArea,
                r.timing.cycleTime, r.timing.busCycleTime);
    double t = (double)r.design.ic.transfers.size();
    if (t > biggestTransfers) {
      biggestTransfers = t;
      busWinsBiggest = r.design.ic.busArea < r.design.ic.muxArea;
    }
    if (t < smallestTransfers) {
      smallestTransfers = t;
      muxWinsSmallest = r.design.ic.muxArea < r.design.ic.busArea;
    }
    if (r.timing.cycleTime < r.timing.busCycleTime) ++muxWinsTime;
    ++n;
  }
  std::printf("\n");
  // The paper's claim pair is a trade-off, and the crossover is what makes
  // "depending on the application, a combination of both may be the best
  // solution" true: shared buses amortize wiring only once the mux trees
  // grow; small datapaths stay cheaper with muxes, and muxes are always
  // faster than a heavily loaded shared wire.
  bench::claim("buses win wiring area on the interconnect-heaviest design",
               busWinsBiggest);
  bench::claim("muxes win wiring area on the smallest design",
               muxWinsSmallest);
  bench::claim("muxes always give the faster cycle", muxWinsTime == n);
  return 0;
}
