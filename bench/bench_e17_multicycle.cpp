// E17 — multicycle functional units (ablation).
//
// Section 3.1.1: "finding the most efficient possible schedule for the
// real hardware requires knowing the delays for the different operations."
// With single-cycle units, the slowest operator (the divider) sets the
// clock for every step. Letting multipliers take 2 and dividers 4 control
// steps adds states but shortens the clock; whether total execution time
// improves depends on how operator-bound the design is — measured here.
#include <cstdio>

#include "bench/bench_util.h"
#include "core/designs.h"
#include "core/synthesizer.h"

using namespace mphls;

int main() {
  std::printf("== E17: single-cycle vs multicycle functional units ==\n\n");
  std::printf("%-8s | %8s %8s %10s | %8s %8s %10s | %8s\n", "", "steps",
              "clock", "exec time", "steps", "clock", "exec time", "ratio");
  std::printf("%-8s | %28s | %28s | %8s\n", "design", "single-cycle units",
              "multicycle (mul=2, div=4)", "");

  bool clockAlwaysShorter = true;
  bool stepsNeverFewer = true;
  int divBoundWins = 0;
  for (const auto& d : designs::all()) {
    SynthesisOptions unit;
    unit.scheduler = SchedulerKind::List;
    unit.resources = ResourceLimits::universalSet(2);
    SynthesisOptions multi = unit;
    multi.latencies = OpLatencyModel::multiCycle();

    Synthesizer s1(unit), s2(multi);
    auto r1 = s1.synthesizeSource(d.source);
    auto r2 = s2.synthesizeSource(d.source);

    long l1 = r1.latencyFor(d.sampleInputs);
    long l2 = r2.latencyFor(d.sampleInputs);
    double t1 = (double)l1 * r1.timing.cycleTime;
    double t2 = (double)l2 * r2.timing.cycleTime;
    std::printf("%-8s | %8ld %8.2f %10.1f | %8ld %8.2f %10.1f | %8.2f\n",
                d.name, l1, r1.timing.cycleTime, t1, l2,
                r2.timing.cycleTime, t2, t1 / t2);
    if (r2.timing.cycleTime >= r1.timing.cycleTime)
      clockAlwaysShorter = false;
    if (l2 < l1) stepsNeverFewer = false;
    if (t2 < t1) ++divBoundWins;

    // Cross-check: the multicycle RTL still computes the same function.
    std::string msg = verifyAgainstBehavior(r2, d.sampleInputs);
    if (!msg.empty()) {
      std::printf("  VERIFICATION FAILED for %s: %s\n", d.name, msg.c_str());
      return 1;
    }
  }
  std::printf("\n");
  bench::claim("multicycle units always shorten the clock",
               clockAlwaysShorter);
  bench::claim("multicycle schedules never take fewer control steps",
               stepsNeverFewer);
  std::printf("  multicycle wins total execution time on %d/%zu designs\n",
              divBoundWins, designs::all().size());
  std::printf("  (the win concentrates where a slow divider previously set "
              "every step's clock)\n");
  return 0;
}
