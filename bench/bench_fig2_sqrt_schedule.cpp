// E2 / Fig. 2 — "Optimized Control Graph and Schedule".
//
// The paper's quantitative anchor: after the high-level transformations
// (2-bit counter with wraparound exit test, *0.5 -> right shift, +1 ->
// increment),
//   - "a trivial special case uses just one functional unit and one
//     memory. Each operation has to be scheduled in a different control
//     step, so the computation takes 3+4*5=23 control steps";
//   - "Since the shift operation is free, with two functional units the
//     operations can now be scheduled in 2+4*2=10 control steps."
#include <cstdio>

#include "bench/bench_util.h"
#include "core/designs.h"
#include "ir/interp.h"
#include "lang/frontend.h"
#include "sched/list_sched.h"
#include "sched/sched_util.h"

using namespace mphls;

int main() {
  std::printf("== E2 / Fig. 2: sqrt schedules, 23 vs 10 control steps ==\n\n");
  Function fn = compileBdlOrThrow(designs::sqrtSource());
  Interpreter interp(fn);
  auto trace = interp.run({{"x", 2048}});

  // --- trivial serial schedule: one op per step --------------------------
  Schedule serial = scheduleFunction(
      fn, [](const BlockDeps& d) { return serialSchedule(d); });
  std::printf("--- serial schedule (1 FU, 1 memory) ---\n");
  for (const auto& blk : fn.blocks()) {
    BlockDeps deps(fn, blk);
    std::printf("%s (%d steps):\n%s", blk.name.c_str(),
                serial.of(blk.id).numSteps,
                renderBlockSchedule(deps, serial.of(blk.id)).c_str());
  }
  long serialSteps = serial.stepsForTrace(trace.blockTrace);
  BlockId body = fn.findBlock("do_body_0");
  std::printf("\n");
  bench::verdict("entry block control steps", 3,
                 serial.of(fn.entry()).numSteps);
  bench::verdict("loop body control steps per iteration", 5,
                 serial.of(body).numSteps);
  bench::verdict("total: 3 + 4*5 control steps", 23, serialSteps);

  // --- packed schedule: two universal units, shift chains free ----------
  auto limits = ResourceLimits::universalSet(2);
  Schedule packed = scheduleFunction(fn, [&](const BlockDeps& d) {
    return listSchedule(d, limits, ListPriority::PathLength);
  });
  std::printf("\n--- packed schedule (2 FUs, free shift) ---\n");
  for (const auto& blk : fn.blocks()) {
    BlockDeps deps(fn, blk);
    std::printf("%s (%d steps):\n%s", blk.name.c_str(),
                packed.of(blk.id).numSteps,
                renderBlockSchedule(deps, packed.of(blk.id)).c_str());
  }
  long packedSteps = packed.stepsForTrace(trace.blockTrace);
  std::printf("\n");
  bench::verdict("entry block control steps", 2,
                 packed.of(fn.entry()).numSteps);
  bench::verdict("loop body control steps per iteration", 2,
                 packed.of(body).numSteps);
  bench::verdict("total: 2 + 4*2 control steps", 10, packedSteps);

  std::printf("\nspeedup from one extra functional unit: %.2fx\n",
              (double)serialSteps / (double)packedSteps);
  return 0;
}
