// E6 / Fig. 6 — "Greedy Data Path Allocation".
//
// "Assignments are made so as to minimize interconnect. In the case shown
// in the figure, a2 was assigned to adder2 since the increase in
// multiplexing cost required by that allocation was zero ... if we had
// assigned a2 to adder1 and a4 to adder1 without checking for
// interconnection costs, then the final multiplexing would have been more
// expensive. A more global selection rule also could have been applied."
#include <cstdio>

#include "alloc/fu_alloc.h"
#include "alloc/interconnect.h"
#include "bench/bench_util.h"
#include "sched/list_sched.h"
#include "sched/sched_util.h"

using namespace mphls;

namespace {

/// Two adders' worth of parallelism where source reuse matters: step 0
/// computes a+b and c+d; step 1 computes c+d and a+b again (through
/// variables); interconnect-aware assignment reuses each adder's sources.
Function buildGraph() {
  Function fn("fig6");
  BlockId b = fn.addBlock("entry");
  ValueId va = fn.emitRead(b, fn.addInput("a", 8));
  ValueId vb = fn.emitRead(b, fn.addInput("b", 8));
  ValueId vc = fn.emitRead(b, fn.addInput("c", 8));
  ValueId vd = fn.emitRead(b, fn.addInput("d", 8));
  ValueId a1 = fn.emitBinary(b, OpKind::Add, va, vb);
  ValueId a1b = fn.emitBinary(b, OpKind::Add, vc, vd);
  VarId t1 = fn.addVar("t1", 8);
  VarId t2 = fn.addVar("t2", 8);
  fn.emitStore(b, t1, a1);
  fn.emitStore(b, t2, a1b);
  ValueId l1 = fn.emitLoad(b, t1);
  ValueId l2 = fn.emitLoad(b, t2);
  ValueId a2 = fn.emitBinary(b, OpKind::Add, vc, vd);
  ValueId a3 = fn.emitBinary(b, OpKind::Add, va, vb);
  ValueId s1 = fn.emitBinary(b, OpKind::Xor, a2, l1);
  ValueId s2 = fn.emitBinary(b, OpKind::Xor, a3, l2);
  fn.emitWrite(b, fn.addOutput("q0", 8), s1);
  fn.emitWrite(b, fn.addOutput("q1", 8), s2);
  fn.setReturn(b);
  return fn;
}

}  // namespace

int main() {
  std::printf("== E6 / Fig. 6: greedy data-path allocation ==\n\n");
  Function fn = buildGraph();
  auto limits = ResourceLimits::withClasses(
      {{FuClass::Adder, 2}, {FuClass::Logic, 2}});
  Schedule sched = scheduleFunction(fn, [&](const BlockDeps& d) {
    return listSchedule(d, limits, ListPriority::PathLength);
  });
  HwLibrary lib = HwLibrary::defaultLibrary();
  LifetimeInfo lt = computeLifetimes(fn, sched);
  RegAssignment regs = allocateRegisters(lt);

  std::printf("%-24s %14s %14s %8s\n", "method", "mux area",
              "2:1 muxes", "FUs");
  double awareArea = 0, blindArea = 0;
  for (auto m : {FuAllocMethod::GreedyLocal, FuAllocMethod::GreedyGlobal,
                 FuAllocMethod::InterconnectBlind, FuAllocMethod::Clique}) {
    FuBinding bind = allocateFus(fn, sched, lt, regs, lib, m);
    InterconnectResult ic = buildInterconnect(fn, sched, lt, regs, bind, lib);
    std::printf("%-24s %14.1f %14d %8d\n",
                std::string(fuAllocMethodName(m)).c_str(), ic.muxArea,
                ic.mux2to1Count, bind.numFus());
    if (m == FuAllocMethod::GreedyLocal) awareArea = ic.muxArea;
    if (m == FuAllocMethod::InterconnectBlind) blindArea = ic.muxArea;
  }
  std::printf("\n");
  bench::claim(
      "interconnect-aware greedy beats blind first-fit in mux cost",
      awareArea < blindArea);
  std::printf("  (aware %.1f vs blind %.1f: %.0f%% cheaper multiplexing)\n",
              awareArea, blindArea,
              100.0 * (blindArea - awareArea) / blindArea);
  return 0;
}
