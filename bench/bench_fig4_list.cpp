// E4 / Fig. 4 — "A List Schedule".
//
// "List scheduling overcomes this problem by using a more global criterion
// ... Here the priority is the length of the path from the operation to
// the end of the block. Since operation 2 has a higher priority than
// operation 1, it is scheduled first, giving an optimal schedule for this
// case." All four priority functions are compared on the Fig. 3 graph.
#include <cstdio>

#include "bench/bench_util.h"
#include "sched/asap.h"
#include "sched/list_sched.h"
#include "sched/schedule.h"

using namespace mphls;

namespace {

Function buildGraph() {
  Function fn("fig4");
  BlockId b = fn.addBlock("entry");
  std::vector<ValueId> v;
  for (int i = 0; i < 6; ++i) {
    // Sequential append: GCC 12 -Wrestrict -O3 false positive (see vcd.cpp).
    std::string pname = "p";
    pname += std::to_string(i);
    v.push_back(fn.emitRead(b, fn.addInput(pname, 8)));
  }
  ValueId y1 = fn.emitBinary(b, OpKind::Add, v[0], v[1]);
  ValueId y2 = fn.emitBinary(b, OpKind::Add, v[2], v[3]);
  ValueId y3 = fn.emitBinary(b, OpKind::Add, v[4], v[5]);
  ValueId x1 = fn.emitBinary(b, OpKind::Add, v[0], v[5]);
  ValueId x2 = fn.emitBinary(b, OpKind::Add, x1, v[1]);
  ValueId x3 = fn.emitBinary(b, OpKind::Add, x2, v[2]);
  fn.emitWrite(b, fn.addOutput("q0", 8), y1);
  fn.emitWrite(b, fn.addOutput("q1", 8), y2);
  fn.emitWrite(b, fn.addOutput("q2", 8), y3);
  fn.emitWrite(b, fn.addOutput("q3", 8), x3);
  fn.setReturn(b);
  return fn;
}

}  // namespace

int main() {
  std::printf("== E4 / Fig. 4: list scheduling fixes the ASAP pathology ==\n\n");
  Function fn = buildGraph();
  BlockDeps deps(fn, fn.block(fn.entry()));
  auto limits = ResourceLimits::withClasses({{FuClass::Adder, 2}});

  BlockSchedule asap = asapResourceSchedule(deps, limits);
  std::printf("%-28s -> %d steps\n", "ASAP (no priority)", asap.numSteps);
  for (auto prio : {ListPriority::PathLength, ListPriority::Mobility,
                    ListPriority::Urgency, ListPriority::ProgramOrder}) {
    BlockSchedule s = listSchedule(deps, limits, prio);
    std::printf("list, %-21s -> %d steps\n",
                std::string(listPriorityName(prio)).c_str(), s.numSteps);
  }

  BlockSchedule best =
      listSchedule(deps, limits, ListPriority::PathLength);
  std::printf("\npath-length list schedule:\n%s\n",
              renderBlockSchedule(deps, best).c_str());
  bench::verdict("list (path-length priority) schedule length", 3,
                 best.numSteps);
  bench::claim("optimal: equals the critical path", best.numSteps == 3);
  bench::claim("ASAP was worse", asap.numSteps > best.numSteps);
  return 0;
}
