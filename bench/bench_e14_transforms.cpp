// E14 — high-level transformation ablation.
//
// Section 2's transformation catalog, measured: each pass's standalone
// effect on the CDFG (operation count) and the end effect of the pipelines
// on schedule length, on the sqrt and diffeq designs — including the loop
// unrolling the paper singles out ("Loop unrolling can also be done in
// this case since the number of iterations is fixed and small").
#include <cstdio>

#include "bench/bench_util.h"
#include "core/designs.h"
#include "core/synthesizer.h"
#include "lang/frontend.h"
#include "opt/pass.h"

using namespace mphls;

namespace {

/// Dynamic latency: control steps for one execution on the sample inputs
/// (the honest metric once loops are unrolled — static step counts grow
/// with unrolling while executions shrink).
long scheduleLength(Function fn,
                    const std::map<std::string, std::uint64_t>& inputs) {
  SynthesisOptions o;
  o.scheduler = SchedulerKind::List;
  o.resources = ResourceLimits::universalSet(2);
  o.opt = OptLevel::None;  // measure the IR as given
  Synthesizer synth(o);
  return synth.synthesize(std::move(fn)).latencyFor(inputs);
}

}  // namespace

int main() {
  std::printf("== E14: high-level transformation ablation ==\n");

  for (const char* name : {"sqrt", "diffeq"}) {
    const char* src = nullptr;
    std::map<std::string, std::uint64_t> inputs;
    for (const auto& d : designs::all())
      if (std::string(d.name) == name) {
        src = d.source;
        inputs = d.sampleInputs;
      }

    std::printf("\n--- %s ---\n", name);
    Function base = compileBdlOrThrow(src);
    std::printf("  %-28s %8s %8s %8s\n", "pass (standalone)", "rewrites",
                "ops", "FU ops");
    std::printf("  %-28s %8s %8zu %8zu\n", "(none)", "-", base.numLiveOps(),
                base.numRealOps());

    struct Entry {
      const char* name;
      std::unique_ptr<Pass> (*make)();
    };
    const Entry kPasses[] = {
        {"forwarding", [] { return createForwardingPass(); }},
        {"constant folding", [] { return createConstFoldPass(); }},
        {"strength reduction", [] { return createStrengthPass(); }},
        {"algebraic simplify", [] { return createAlgebraicPass(); }},
        {"cse", [] { return createCsePass(); }},
        {"dce", [] { return createDcePass(); }},
        {"loop unrolling", [] { return createUnrollPass(64); }},
        {"tree-height reduction", [] { return createTreeHeightPass(); }},
    };
    for (const auto& e : kPasses) {
      Function fn = base.clone();
      auto pass = e.make();
      int changes = pass->run(fn);
      fn.compact();
      std::printf("  %-28s %8d %8zu %8zu\n", e.name, changes,
                  fn.numLiveOps(), fn.numRealOps());
    }

    // Pipelines: op counts and schedule length.
    Function stdFn = base.clone();
    PassManager::standardPipeline().run(stdFn);
    Function aggFn = base.clone();
    PassManager::aggressivePipeline().run(aggFn);
    std::printf("  %-28s %8s %8zu %8zu\n", "standard pipeline", "-",
                stdFn.numLiveOps(), stdFn.numRealOps());
    std::printf("  %-28s %8s %8zu %8zu  (%zu blocks)\n",
                "aggressive pipeline", "-", aggFn.numLiveOps(),
                aggFn.numRealOps(), aggFn.numBlocks());

    long rawLen = scheduleLength(base.clone(), inputs);
    long stdLen = scheduleLength(stdFn.clone(), inputs);
    long aggLen = scheduleLength(aggFn.clone(), inputs);
    std::printf("  dynamic latency (list, 2 FUs): raw %ld -> standard %ld "
                "-> aggressive %ld control steps\n",
                rawLen, stdLen, aggLen);
    bench::claim("optimization never lengthens the execution",
                 stdLen <= rawLen && aggLen <= stdLen);
  }
  return 0;
}
