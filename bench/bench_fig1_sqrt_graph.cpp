// E1 / Fig. 1 — "High-level Specification and graph for sqrt".
//
// Reproduces the paper's first figure as data: the square-root program is
// compiled to the internal representation and its data-flow and control
// graphs are printed separately ("shown separately in the figure for
// intelligibility"). The two structural claims the figure carries are
// checked:
//   - "the addition at the top of the diagram depends for its input on
//     data produced by the multiplication" (mul -> add dependence);
//   - "there is no dependence between the I + 1 operation inside the loop
//     and any of the operations in the chain that calculates Y" (the
//     counter increment is independent of the Y chain).
#include <cstdio>
#include <iostream>

#include "bench/bench_util.h"
#include "core/designs.h"
#include "ir/analysis.h"
#include "ir/deps.h"
#include "ir/dot.h"
#include "lang/frontend.h"

using namespace mphls;

int main() {
  std::printf("== E1 / Fig. 1: sqrt specification and its graphs ==\n\n");
  Function fn = compileBdlOrThrow(designs::sqrtSource());

  std::printf("--- control-flow graph (DOT) ---\n%s\n",
              controlFlowDot(fn).c_str());
  std::printf("--- entry data-flow graph (DOT) ---\n%s\n",
              dataFlowDot(fn, fn.entry()).c_str());
  BlockId body = fn.findBlock("do_body_0");
  std::printf("--- loop-body data-flow graph (DOT) ---\n%s\n",
              dataFlowDot(fn, body).c_str());

  // Claim 1: in the seed computation, the addition consumes the
  // multiplication's result (through scaling wiring).
  bool mulFeedsAdd = false;
  {
    const Block& blk = fn.block(fn.entry());
    BlockDeps deps(fn, blk);
    for (std::size_t i = 0; i < deps.numOps(); ++i) {
      if (deps.op(i).kind != OpKind::Add) continue;
      for (std::size_t j = 0; j < deps.numOps(); ++j)
        if (deps.op(j).kind == OpKind::Mul && deps.reaches(j, i))
          mulFeedsAdd = true;
    }
  }
  bench::claim("entry: multiplication feeds the addition", mulFeedsAdd);

  // Claim 2: the I+1 increment is independent of the Y chain in the body
  // (neither reaches the other), so they may run in parallel.
  {
    BlockDeps deps(fn, fn.block(body));
    std::size_t incIdx = SIZE_MAX, divIdx = SIZE_MAX, addIdx = SIZE_MAX;
    for (std::size_t i = 0; i < deps.numOps(); ++i) {
      const Op& o = deps.op(i);
      if (o.kind == OpKind::UDiv) divIdx = i;
      if (o.kind == OpKind::Add) {
        // Distinguish Y-chain add (16-bit, consumes the divide) from the
        // counter add (2-bit).
        if (fn.value(o.result).width > 4)
          addIdx = i;
        else
          incIdx = i;
      }
    }
    bool found = incIdx != SIZE_MAX && divIdx != SIZE_MAX && addIdx != SIZE_MAX;
    bool independent = found && !deps.reaches(incIdx, divIdx) &&
                       !deps.reaches(divIdx, incIdx) &&
                       !deps.reaches(incIdx, addIdx) &&
                       !deps.reaches(addIdx, incIdx);
    bench::claim("body: I+1 independent of the Y chain (may run parallel)",
                 independent);
  }

  // Graph statistics, Fig. 1 in numbers.
  std::printf("\n--- statistics ---\n");
  std::printf("  blocks: %zu  (entry, loop body, exit)\n", fn.numBlocks());
  for (const auto& blk : fn.blocks()) {
    BlockDeps deps(fn, blk);
    LevelInfo li = computeLevels(deps);
    std::printf("  %-12s: %3zu ops, %3zu dependence edges, critical %d\n",
                blk.name.c_str(), deps.numOps(), deps.edges().size(),
                li.criticalLength);
  }
  return 0;
}
