// E10 — register allocation methods.
//
// Section 3.2: REAL's left-edge algorithm ("selects the earliest value to
// assign at each step, sharing registers among values whenever possible")
// versus clique partitioning versus the naive one-register-per-value
// baseline. Left edge is optimal for interval lifetimes: its count equals
// the max-overlap lower bound.
#include <cstdio>

#include "alloc/lifetime.h"
#include "alloc/reg_alloc.h"
#include "bench/bench_util.h"
#include "core/designs.h"
#include "lang/frontend.h"
#include "sched/list_sched.h"
#include "sched/sched_util.h"

using namespace mphls;

int main() {
  std::printf("== E10: register allocation (REAL / clique / naive) ==\n\n");
  std::printf("%-10s %10s %10s %10s %10s %12s\n", "design", "items",
              "overlap", "left-edge", "clique", "naive");

  bool leftEdgeAlwaysOptimal = true;
  bool allValid = true;
  long naiveTotal = 0, leTotal = 0;
  for (const auto& d : designs::all()) {
    Function fn = compileBdlOrThrow(d.source);
    auto limits = ResourceLimits::universalSet(2);
    Schedule sched = scheduleFunction(fn, [&](const BlockDeps& dd) {
      return listSchedule(dd, limits, ListPriority::PathLength);
    });
    LifetimeInfo lt = computeLifetimes(fn, sched);
    auto le = allocateRegisters(lt, RegAllocMethod::LeftEdge);
    auto cq = allocateRegisters(lt, RegAllocMethod::Clique);
    auto na = allocateRegisters(lt, RegAllocMethod::Naive);
    allValid = allValid && validateRegAssignment(lt, le).empty() &&
               validateRegAssignment(lt, cq).empty() &&
               validateRegAssignment(lt, na).empty();
    std::printf("%-10s %10zu %10d %10d %10d %12d\n", d.name,
                lt.items.size(), lt.maxOverlap(), le.numRegs, cq.numRegs,
                na.numRegs);
    if (le.numRegs != lt.maxOverlap()) leftEdgeAlwaysOptimal = false;
    naiveTotal += na.numRegs;
    leTotal += le.numRegs;
  }
  std::printf("\n");
  bench::claim("left edge always achieves the max-overlap lower bound",
               leftEdgeAlwaysOptimal);
  bench::claim("every assignment valid (no overlapping lifetimes share)",
               allValid);
  std::printf("  sharing saves %ld of %ld naive registers (%.0f%%)\n",
              naiveTotal - leTotal, naiveTotal,
              100.0 * (double)(naiveTotal - leTotal) / (double)naiveTotal);
  return 0;
}
