// E7 / Fig. 7 — "Example of a Clique" formulation of allocation.
//
// "One clique is highlighted, showing that the three operations can share
// the same adder, just as in the greedy example." The same operation set
// is partitioned by Tseng–Siewiorek clique covering; the exact
// branch-and-bound cover confirms the heuristic found the minimum.
#include <cstdio>

#include "alloc/clique.h"
#include "alloc/fu_alloc.h"
#include "bench/bench_util.h"
#include "sched/list_sched.h"
#include "sched/sched_util.h"

using namespace mphls;

int main() {
  std::printf("== E7 / Fig. 7: clique formulation of FU allocation ==\n\n");

  // a1, a2 in step 0; a3 in step 1; a4 in step 2 (compatibility exactly as
  // in the paper's figure: everything except the two step-0 additions).
  Function fn("fig7");
  BlockId b = fn.addBlock("entry");
  ValueId va = fn.emitRead(b, fn.addInput("a", 8));
  ValueId vb = fn.emitRead(b, fn.addInput("b", 8));
  ValueId a1 = fn.emitBinary(b, OpKind::Add, va, vb);
  ValueId a2 = fn.emitBinary(b, OpKind::Add, vb, va);
  ValueId a3 = fn.emitBinary(b, OpKind::Add, a1, a2);
  ValueId a4 = fn.emitBinary(b, OpKind::Add, a3, va);
  fn.emitWrite(b, fn.addOutput("q", 8), a4);
  fn.setReturn(b);

  Schedule sched = scheduleFunction(fn, [&](const BlockDeps& d) {
    return listSchedule(d, ResourceLimits::unlimited(),
                        ListPriority::PathLength);
  });

  // Build the compatibility graph by hand so it can be printed.
  BlockDeps deps(fn, fn.block(fn.entry()));
  std::vector<std::size_t> adds;
  for (std::size_t i = 0; i < deps.numOps(); ++i)
    if (deps.op(i).kind == OpKind::Add) adds.push_back(i);
  const BlockSchedule& bs = sched.of(fn.entry());

  CompatGraph g(adds.size());
  std::printf("operations and steps:\n");
  for (std::size_t i = 0; i < adds.size(); ++i)
    std::printf("  a%zu @ step %d\n", i + 1, bs.step[adds[i]]);
  std::printf("\ncompatibility edges (different control steps):\n  ");
  for (std::size_t i = 0; i < adds.size(); ++i)
    for (std::size_t j = i + 1; j < adds.size(); ++j)
      if (bs.step[adds[i]] != bs.step[adds[j]]) {
        g.addEdge(i, j);
        std::printf("a%zu-a%zu ", i + 1, j + 1);
      }
  std::printf("\n\n");

  CliqueCover greedy = cliquePartition(g);
  CliqueCover exact = cliquePartitionExact(g);
  std::printf("clique cover (greedy):\n");
  auto cliques = greedy.cliques();
  std::size_t largest = 0;
  for (std::size_t c = 0; c < cliques.size(); ++c) {
    std::printf("  adder%zu <- {", c + 1);
    for (std::size_t m : cliques[c]) std::printf(" a%zu", m + 1);
    std::printf(" }\n");
    largest = std::max(largest, cliques[c].size());
  }
  std::printf("\n");
  bench::verdict("adders in the cover", 2, (long)greedy.count);
  bench::verdict("operations sharing one adder", 3, (long)largest);
  bench::claim("greedy heuristic matches the exact minimum cover",
               greedy.count == exact.count);
  bench::claim("cover is valid (all members pairwise compatible)",
               coverIsValid(g, greedy));
  return 0;
}
