// E3 / Fig. 3 — "ASAP Scheduling" and its pathology.
//
// "The problem with this algorithm is that no priority is given to
// operations on the critical path, so that when there are limits on
// resource usage, operations that are less critical can be scheduled first
// on limited resources and thus block critical operations ... forcing a
// longer than optimal schedule."
#include <cstdio>

#include "bench/bench_util.h"
#include "ir/analysis.h"
#include "sched/asap.h"
#include "sched/schedule.h"

using namespace mphls;

namespace {

/// The Fig. 3 graph shape: a 3-add critical chain plus three independent
/// adds, with the independent ops first in program order and two adders.
Function buildGraph() {
  Function fn("fig3");
  BlockId b = fn.addBlock("entry");
  std::vector<ValueId> v;
  for (int i = 0; i < 6; ++i) {
    // Sequential append: GCC 12 -Wrestrict -O3 false positive (see vcd.cpp).
    std::string pname = "p";
    pname += std::to_string(i);
    v.push_back(fn.emitRead(b, fn.addInput(pname, 8)));
  }
  ValueId y1 = fn.emitBinary(b, OpKind::Add, v[0], v[1]);
  ValueId y2 = fn.emitBinary(b, OpKind::Add, v[2], v[3]);
  ValueId y3 = fn.emitBinary(b, OpKind::Add, v[4], v[5]);
  ValueId x1 = fn.emitBinary(b, OpKind::Add, v[0], v[5]);
  ValueId x2 = fn.emitBinary(b, OpKind::Add, x1, v[1]);
  ValueId x3 = fn.emitBinary(b, OpKind::Add, x2, v[2]);
  fn.emitWrite(b, fn.addOutput("q0", 8), y1);
  fn.emitWrite(b, fn.addOutput("q1", 8), y2);
  fn.emitWrite(b, fn.addOutput("q2", 8), y3);
  fn.emitWrite(b, fn.addOutput("q3", 8), x3);
  fn.setReturn(b);
  return fn;
}

}  // namespace

int main() {
  std::printf("== E3 / Fig. 3: the ASAP scheduling pathology ==\n\n");
  Function fn = buildGraph();
  BlockDeps deps(fn, fn.block(fn.entry()));
  LevelInfo li = computeLevels(deps);
  std::printf("graph: 6 additions; critical path %d steps; 2 adders\n\n",
              li.criticalLength);

  auto limits = ResourceLimits::withClasses({{FuClass::Adder, 2}});
  BlockSchedule s = asapResourceSchedule(deps, limits);
  std::printf("ASAP schedule:\n%s\n", renderBlockSchedule(deps, s).c_str());

  bench::verdict("ASAP schedule length (suboptimal: chain blocked)", 4,
                 s.numSteps);
  bench::claim("validity: dependences and resource limits respected",
               validateBlockSchedule(deps, s, limits).empty());
  bench::claim("pathology: longer than the 3-step critical path",
               s.numSteps > li.criticalLength);
  return 0;
}
