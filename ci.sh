#!/bin/sh
# Tier-1 verification: warnings-clean build, full test suite, and a static
# lint of the paper's square-root design end to end.
set -eu

cd "$(dirname "$0")"

cmake -B build -S . -DMPHLS_WERROR=ON
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure -j"$(nproc)"
./build/src/cli/mphls lint examples/sqrt.bdl

echo "ci: all checks passed"
