#!/bin/sh
# Tier-1 verification: warnings-clean build, full test suite, a static lint
# of the paper's square-root design, the semantic-lint gate over every
# built-in design, a static-timing gate (path-level STA over every
# built-in, cross-validated against the estimator, plus a must-fail
# tight-clock run), a fixed-seed differential fuzz campaign (plus an
# injected-miscompile round trip), the formal equivalence gate (`mphls
# prove` over every built-in at every opt level, plus must-fail runs for
# each injected bug class), a bytecode-VM oracle gate (200 seeds co-
# simulated on both the VM and the interpreters, zero divergences
# tolerated), an AddressSanitizer+UBSan pass over the whole suite
# (observability layer and VM dispatch loop included), a ThreadSanitizer
# pass over the parallel-DSE layer and the serve daemon, a Release (-O3
# -Werror) build of the full tree, bench smoke runs with schema checks of
# the emitted BENCH_dse.json, BENCH_sim.json and BENCH_sta.json, an
# observability
# smoke run validating the Chrome trace, metrics JSON, and VCD waveform
# from `mphls profile`, and a serve smoke: daemon on an ephemeral port,
# byte-diff of every endpoint against the offline CLI, a concurrent
# loadgen run with a schema check of BENCH_serve.json, a Prometheus
# text-exposition gate (TYPE lines, cumulative buckets, _sum/_count
# consistency), a SIGQUIT flight-recorder dump smoke against the live
# daemon, a structured access-log schema check, a graceful SIGTERM
# drain, and a bench --check regression gate comparing every smoke
# report against the committed bench/baselines.
set -eu

cd "$(dirname "$0")"

cmake -B build -S . -DMPHLS_WERROR=ON
cmake --build build -j"$(nproc)"
ctest --test-dir build --output-on-failure -j"$(nproc)"
./build/src/cli/mphls lint examples/sqrt.bdl

# --- Release build gate: -O3 turns on optimizer-driven diagnostics that
# RelWithDebInfo never sees (GCC 12's -Wrestrict insert-path analysis
# among them); the tree must stay warnings-clean there too.
cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release -DMPHLS_WERROR=ON
cmake --build build-release -j"$(nproc)"

# --- Semantic-lint gate: the abstract-interpretation lints must report no
# error-severity finding on any built-in design (warnings are allowed and
# printed for review).
./build/src/cli/mphls analyze --builtins

# --- Static-timing gate: every built-in must close timing at its own
# estimated clock with the STA engine agreeing with the estimator (the
# sta command exits 1 on any error-severity timing finding)...
./build/src/cli/mphls sta --builtins

# ...and an impossibly tight clock must be *reported* as negative slack
# (exit 1), proving the slack math and the timing lint fire end to end.
if ./build/src/cli/mphls sta --clock 2.0 examples/sqrt.bdl --quiet \
    > /dev/null; then
  echo "sta: negative slack at a 2ns clock was NOT reported" >&2
  exit 1
fi

# --- Differential fuzz smoke: a fixed-seed campaign over the standard
# scheduler/allocator/encoding matrix must co-simulate clean (any failure
# is saved and auto-reduced under build/fuzz-smoke for inspection)...
./build/src/cli/mphls fuzz --seeds 100 --jobs "$(nproc)" --reduce \
  --corpus build/fuzz-smoke

# ...and an injected Mul->Add miscompile must be *caught* (exit 1),
# proving the mismatch-detection path works end to end.
if ./build/src/cli/mphls fuzz --seeds 10 --matrix quick --inject mul \
    --no-save --quiet > /dev/null; then
  echo "fuzz: injected miscompile was NOT detected" >&2
  exit 1
fi

# --- Bytecode-VM oracle gate: every one of 200 seeds runs on both the VM
# and the tree-walking interpreters (100% cross-check sampling is implied
# by --engine both) and must agree bit-for-bit — a single divergence is a
# VM bug and fails the build.
./build/src/cli/mphls fuzz --seeds 200 --jobs "$(nproc)" --engine both \
  --no-save --quiet

# --- Formal equivalence gate: every built-in design must *prove*
# behavioral/RTL equivalent (and every optimization pass equivalence-
# preserving) at every optimization level, with and without width
# narrowing...
for opt in none standard aggressive; do
  ./build/src/cli/mphls prove --builtins --opt "$opt" --prove-passes --quiet
  ./build/src/cli/mphls prove --builtins --opt "$opt" --narrow \
    --prove-passes --quiet
done

# ...and each injected miscompile class must make the proof *fail* on every
# design it applies to (`prove --inject` exits 0 only when the bug was
# caught everywhere it was planted).
for bug in mul sched bind; do
  ./build/src/cli/mphls prove --builtins --inject "$bug" --quiet
done

# --- AddressSanitizer + UndefinedBehaviorSanitizer: the full suite — in
# particular the interpreter/analysis soundness fuzzers, which drive every
# operation with extreme widths, shift amounts, and INT64_MIN/-1 divisions —
# must be free of memory errors and UB.
cmake -B build-asan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -g" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined"
cmake --build build-asan -j"$(nproc)" --target mphls_tests
./build-asan/tests/mphls_tests --gtest_brief=1

# --- ThreadSanitizer: the concurrency layer (thread pool, frontend cache,
# parallel sweeps, and the serve daemon's loop/worker handoff) must be
# race-free, not merely deterministic.
cmake -B build-tsan -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -g" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
cmake --build build-tsan -j"$(nproc)" --target mphls_tests
./build-tsan/tests/mphls_tests \
  --gtest_filter='DseParallel*:Serve*:ObsConcurrency*' \
  --gtest_brief=1

# --- Bench smoke: the suite must run, re-confirm determinism, and emit a
# report with the expected schema.
BENCH_OUT=build/bench-smoke
mkdir -p "$BENCH_OUT"
./build/src/cli/mphls bench --jobs 4 --points 4 --repeats 1 \
  --sched-ops 24 --out "$BENCH_OUT" --quiet
python3 - "$BENCH_OUT/BENCH_dse.json" "$BENCH_OUT/BENCH_sched.json" << 'EOF'
import json, sys

dse = json.load(open(sys.argv[1]))
need = {
    "benchmark": str, "design": str, "points": int, "jobs": int,
    "repeats": int, "hardware_threads": int, "deterministic": bool,
    "verilog_identical": bool, "wall_seconds_legacy": (int, float),
    "wall_seconds_jobs1": (int, float), "wall_seconds": (int, float),
    "points_per_sec": (int, float), "speedup_vs_1_thread": (int, float),
    "speedup_vs_legacy": (int, float), "point_wall_seconds": list,
    "stage_seconds": dict,
}
for key, ty in need.items():
    assert key in dse, f"BENCH_dse.json missing key: {key}"
    assert isinstance(dse[key], ty), f"BENCH_dse.json bad type for {key}"
assert dse["deterministic"], "parallel sweep diverged from serial"
assert dse["verilog_identical"], "parallel sweep emitted different Verilog"
assert len(dse["point_wall_seconds"]) == dse["points"]
for s in ("optimize", "schedule", "allocate", "control", "estimate",
          "check", "total"):
    assert s in dse["stage_seconds"], f"stage_seconds missing {s}"

sched = json.load(open(sys.argv[2]))
assert sched["all_equal"], "incremental scheduler diverged from reference"
assert sched["cases"], "BENCH_sched.json has no cases"
for c in sched["cases"]:
    assert c["equal"], f"scheduler case {c['name']} diverged"

print("bench smoke: schema ok, deterministic, schedulers equal")
EOF

# --- Simulation-throughput smoke: interp-vs-VM bench must run and emit a
# report with the expected schema (single repeat: CI checks shape and
# sanity, not the headline speedup, which BENCH_sim.json reports from
# best-of-5 runs).
./build/src/cli/mphls bench --sim --repeats 1 --out "$BENCH_OUT" --quiet
python3 - "$BENCH_OUT/BENCH_sim.json" << 'EOF'
import json, sys

sim = json.load(open(sys.argv[1]))
need = {
    "benchmark": str, "repeats": int,
    "behav_speedup_geomean": (int, float), "behav_speedup_min": (int, float),
    "rtl_speedup_geomean": (int, float), "rtl_speedup_min": (int, float),
    "designs": list, "fuzz": dict, "wall_seconds": (int, float),
}
for key, ty in need.items():
    assert key in sim, f"BENCH_sim.json missing key: {key}"
    assert isinstance(sim[key], ty), f"BENCH_sim.json bad type for {key}"
assert sim["benchmark"] == "sim_throughput"
assert sim["designs"], "BENCH_sim.json has no designs"
for d in sim["designs"]:
    assert "name" in d, "BENCH_sim.json design missing name"
    for key in ("interp_runs_per_sec", "vm_runs_per_sec", "speedup"):
        assert key in d["behavioral"], f"design behavioral missing {key}"
    for key in ("cycles_per_run", "interp_cycles_per_sec",
                "vm_cycles_per_sec", "speedup", "vm_compile_seconds"):
        assert key in d["rtl"], f"design rtl missing {key}"
    assert d["behavioral"]["speedup"] > 0 and d["rtl"]["speedup"] > 0
for key in ("seeds", "matrix", "cosims", "interp_seconds", "vm_seconds",
            "interp_cosims_per_sec", "vm_cosims_per_sec", "speedup"):
    assert key in sim["fuzz"], f"BENCH_sim.json fuzz missing key: {key}"

print("sim bench smoke: schema ok, "
      f"rtl geomean {sim['rtl_speedup_geomean']:.1f}x (single repeat)")
EOF

# --- STA bench smoke: the timing-analysis suite must run over every
# built-in, close timing everywhere, and emit a report with the expected
# schema.
./build/src/cli/mphls bench --sta --repeats 1 --out "$BENCH_OUT" --quiet
python3 - "$BENCH_OUT/BENCH_sta.json" << 'EOF'
import json, sys

sta = json.load(open(sys.argv[1]))
need = {
    "benchmark": str, "repeats": int, "designs": list,
    "all_closed": bool, "worst_slack": (int, float),
    "wall_seconds": (int, float),
}
for key, ty in need.items():
    assert key in sta, f"BENCH_sta.json missing key: {key}"
    assert isinstance(sta[key], ty), f"BENCH_sta.json bad type for {key}"
assert sta["benchmark"] == "sta_analysis"
assert sta["designs"], "BENCH_sta.json has no designs"
assert sta["all_closed"], "a builtin failed to close timing"
assert abs(sta["worst_slack"]) < 1e-6, "nonzero slack at estimated clock"
for d in sta["designs"]:
    for key in ("name", "states", "reachable_states", "endpoints",
                "clock_ns", "cycle_time", "estimated_cycle_time",
                "worst_slack", "critical_state", "critical_path_points",
                "structural_cycle_time", "false_path_endpoints",
                "analysis_seconds"):
        assert key in d, f"BENCH_sta.json design missing {key}"
    assert abs(d["cycle_time"] - d["estimated_cycle_time"]) < 1e-6, \
        f"{d['name']}: STA diverged from the estimator"
    assert d["structural_cycle_time"] >= d["cycle_time"] - 1e-9
    assert d["critical_path_points"] >= 2, \
        f"{d['name']}: critical path has no route"

print("sta bench smoke: schema ok, all builtins close timing")
EOF

# --- Observability smoke: `mphls profile` must emit a well-formed Chrome
# trace (balanced B/E nesting on every track, monotone timestamps), a
# metrics JSON with full FSM state coverage on the sqrt controller, and a
# VCD that declares wires and replays at least one FSM state change.
OBS_OUT=build/obs-smoke
mkdir -p "$OBS_OUT"
./build/src/cli/mphls profile examples/sqrt.bdl \
  --trace "$OBS_OUT/trace.json" --vcd "$OBS_OUT/wave.vcd" \
  --stats "$OBS_OUT/metrics.json" --quiet > /dev/null
python3 - "$OBS_OUT/trace.json" "$OBS_OUT/metrics.json" \
  "$OBS_OUT/wave.vcd" << 'EOF'
import json, sys

trace = json.load(open(sys.argv[1]))
assert trace.get("displayTimeUnit") == "ms"
events = trace["traceEvents"]
assert events, "trace has no events"
stacks, last_ts = {}, {}
for e in events:
    assert e["pid"] == 1 and isinstance(e["tid"], int)
    if e["ph"] == "M":
        continue
    assert e["ts"] >= last_ts.get(e["tid"], 0.0), "timestamps regress"
    last_ts[e["tid"]] = e["ts"]
    if e["ph"] == "B":
        stacks.setdefault(e["tid"], []).append(e["name"])
    elif e["ph"] == "E":
        assert stacks.get(e["tid"]), f"E without B on tid {e['tid']}"
        top = stacks[e["tid"]].pop()
        assert top == e["name"], f"mismatched span: {top} vs {e['name']}"
for tid, stack in stacks.items():
    assert not stack, f"unbalanced spans on tid {tid}: {stack}"
names = {e["name"] for e in events if e["ph"] == "B"}
for span in ("stage.schedule", "stage.allocate", "stage.control",
             "sim.rtl", "opt.pipeline"):
    assert span in names, f"trace missing span {span}"

metrics = json.load(open(sys.argv[2]))
cov = metrics["gauges"]["sim.fsm_state_coverage"]
assert cov == 100.0, f"sqrt FSM state coverage {cov} != 100"
assert metrics["counters"]["synth.runs"] >= 1

vcd = open(sys.argv[3]).read()
defs = [l for l in vcd.splitlines() if l.startswith("$var wire ")]
assert defs, "VCD has no $var definitions"
assert any("fsm_state" in l for l in defs), "VCD missing fsm_state wire"
state_code = next(l.split()[3] for l in defs if "fsm_state" in l)
state_changes = sum(
    1 for l in vcd.splitlines()
    if l.startswith("b") and l.endswith(" " + state_code))
assert state_changes >= 2, "VCD replays no FSM state change"

print("obs smoke: trace balanced, sqrt FSM coverage 100%, VCD has "
      f"{state_changes} state changes")
EOF

# --- Serve smoke: daemon on an ephemeral port, byte-diff of every JSON
# endpoint against the offline CLI (the responses must be identical down
# to the last byte), a concurrent loadgen campaign with a schema check of
# BENCH_serve.json (zero errors tolerated), and a graceful SIGTERM drain.
SERVE_OUT=build/serve-smoke
mkdir -p "$SERVE_OUT"
./build/src/cli/mphls serve --port 0 \
  --log-file "$SERVE_OUT/access.jsonl" --log-level info \
  --flight-dump "$SERVE_OUT/flight.dump" > "$SERVE_OUT/serve.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 100); do
  grep -q "listening on" "$SERVE_OUT/serve.log" 2>/dev/null && break
  sleep 0.1
done
SERVE_PORT=$(sed -n 's/.*127\.0\.0\.1:\([0-9]*\).*/\1/p' \
  "$SERVE_OUT/serve.log" | head -1)
if [ -z "$SERVE_PORT" ]; then
  echo "serve smoke: daemon did not start" >&2
  cat "$SERVE_OUT/serve.log" >&2
  exit 1
fi

python3 - "$SERVE_PORT" ./build/src/cli/mphls << 'EOF'
import http.client, json, os, subprocess, sys, tempfile

port, mphls = int(sys.argv[1]), sys.argv[2]
conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)

conn.request("GET", "/healthz")
r = conn.getresponse()
assert r.status == 200, f"/healthz status {r.status}"
assert json.loads(r.read())["status"] == "ok", "/healthz body"

conn.request("GET", "/designs")
designs = json.loads(conn.getresponse().read())
assert designs, "/designs is empty"

# Golden differential: every endpoint's daemon bytes == the CLI's bytes.
checked = 0
for d in designs:
    f = tempfile.NamedTemporaryFile(
        mode="w", suffix=".bdl", delete=False)
    f.write(d["source"])
    f.close()
    for ep, extra, cli in [
        ("/synth", {}, ["synth"]),
        ("/lint", {}, ["lint"]),
        ("/analyze", {}, ["analyze"]),
        ("/sta", {"clock": 10}, ["sta", "--clock", "10"]),
        ("/prove", {}, ["prove"]),
    ]:
        body = {"source": d["source"], "name": f.name}
        body.update(extra)
        conn.request("POST", ep, json.dumps(body))
        daemon = conn.getresponse().read()
        offline = subprocess.run(
            [mphls] + cli + ["--format", "json", f.name],
            capture_output=True).stdout
        assert daemon == offline, (
            f"{d['name']}{ep}: daemon and CLI bytes differ\n"
            f" daemon : {daemon[:160]!r}\n cli    : {offline[:160]!r}")
        checked += 1
    os.unlink(f.name)

conn.request("GET", "/metrics")
metrics = json.loads(conn.getresponse().read())
assert metrics["counters"].get("serve.requests", 0) >= checked
assert "serve.cache.hit_rate" in metrics["gauges"], "/metrics cache gauges"
print(f"serve smoke: {checked} endpoint responses byte-identical to CLI")
EOF

# --- Prometheus exposition gate: /metrics?format=prometheus must be a
# well-formed text-format scrape — every sample named by a TYPE line,
# histogram buckets cumulative and monotone, _count equal to the +Inf
# bucket, and _sum/_count present for every histogram.
python3 - "$SERVE_PORT" << 'EOF'
import http.client, math, sys

conn = http.client.HTTPConnection("127.0.0.1", int(sys.argv[1]), timeout=60)
conn.request("GET", "/metrics?format=prometheus")
r = conn.getresponse()
assert r.status == 200, f"prometheus status {r.status}"
ctype = r.getheader("Content-Type", "")
assert ctype.startswith("text/plain; version=0.0.4"), f"content type {ctype}"
text = r.read().decode()

types = {}       # metric family -> declared type
samples = []     # (name, labels, value)
for line in text.splitlines():
    if not line:
        continue
    if line.startswith("# TYPE "):
        _, _, fam, ty = line.split(" ", 3)
        assert fam not in types, f"duplicate TYPE for {fam}"
        assert ty in ("counter", "gauge", "histogram"), f"bad type {ty}"
        types[fam] = ty
        continue
    assert not line.startswith("#"), f"unexpected comment: {line}"
    body, val = line.rsplit(" ", 1)
    name, labels = body, {}
    if "{" in body:
        name, rest = body.split("{", 1)
        for pair in rest.rstrip("}").split(","):
            k, v = pair.split("=", 1)
            labels[k] = v.strip('"')
    v = float(val)
    assert not math.isnan(v), f"NaN sample: {line}"
    assert name.startswith("mphls_"), f"unprefixed metric: {name}"
    for c in name:
        assert c.isalnum() or c == "_", f"bad metric name char: {name}"
    samples.append((name, labels, v))
assert types, "no TYPE lines"
assert samples, "no samples"

def family(name):
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix) and name[: -len(suffix)] in types:
            return name[: -len(suffix)]
    return name

hist = {}
for name, labels, v in samples:
    fam = family(name)
    assert fam in types, f"sample {name} has no TYPE line"
    if types[fam] == "histogram":
        hist.setdefault(fam, {"buckets": [], "sum": None, "count": None})
        if name.endswith("_bucket"):
            le = labels.get("le")
            assert le is not None, f"{name} bucket without le"
            hist[fam]["buckets"].append((float(le), v))
        elif name.endswith("_sum"):
            hist[fam]["sum"] = v
        elif name.endswith("_count"):
            hist[fam]["count"] = v
    elif types[fam] == "counter":
        # Text format 0.0.4: _total is part of the family name itself.
        assert name == fam and name.endswith("_total"), f"counter {name}"
        assert v >= 0, f"negative counter {name}"

assert hist, "no histograms exposed"
for fam, h in hist.items():
    assert h["sum"] is not None, f"{fam} missing _sum"
    assert h["count"] is not None, f"{fam} missing _count"
    assert h["buckets"], f"{fam} has no buckets"
    les = [le for le, _ in h["buckets"]]
    assert les == sorted(les), f"{fam} buckets out of order"
    assert les[-1] == math.inf, f"{fam} missing +Inf bucket"
    last = -1.0
    for le, v in h["buckets"]:
        assert v >= last, f"{fam} bucket le={le} not cumulative"
        last = v
    assert h["buckets"][-1][1] == h["count"], f"{fam} _count != +Inf bucket"
    if h["count"] > 0:
        assert h["sum"] >= 0 or min(les) < 0, f"{fam} sum/bucket mismatch"

print(f"prometheus gate: {len(samples)} samples, {len(hist)} histograms ok")
EOF

./build/src/cli/mphls loadgen --url "http://127.0.0.1:$SERVE_PORT" \
  --clients 6 --requests 60 --mix synth:lint:sim:sta --seed 7 \
  --out "$SERVE_OUT/BENCH_serve.json"
python3 - "$SERVE_OUT/BENCH_serve.json" << 'EOF'
import json, sys

bench = json.load(open(sys.argv[1]))
need = {
    "benchmark": str, "url": str, "clients": int, "requests": int,
    "mix": str, "seed": (int, float), "wall_seconds": (int, float),
    "requests_per_second": (int, float), "latency": dict, "errors": dict,
    "cache": dict, "endpoints": dict,
}
for key, ty in need.items():
    assert key in bench, f"BENCH_serve.json missing key: {key}"
    assert isinstance(bench[key], ty), f"BENCH_serve.json bad type: {key}"
for key in ("p50_ms", "p90_ms", "p99_ms", "max_ms", "mean_ms"):
    assert key in bench["latency"], f"latency missing {key}"
    assert bench["latency"][key] >= 0
assert bench["latency"]["p50_ms"] <= bench["latency"]["p99_ms"] + 1e-9
assert bench["clients"] >= 4, "serve smoke must run >= 4 clients"
for key in ("transport", "http", "invalid_json"):
    assert bench["errors"][key] == 0, f"loadgen saw {key} errors"
assert bench["cache"]["hit_rate"] > 0, "frontend cache never hit"
assert bench["endpoints"], "no per-endpoint latency recorded"
total = sum(e["count"] for e in bench["endpoints"].values())
assert total == bench["requests"], "request accounting mismatch"
print(f"serve loadgen smoke: {bench['requests']} requests, "
      f"{bench['requests_per_second']:.0f} req/s, zero errors, "
      f"cache hit rate {100 * bench['cache']['hit_rate']:.0f}%")
EOF

# --- Flight-recorder smoke: send one deterministic request, SIGQUIT the
# live daemon, and require the dump's newest serve access event to name
# that request — proving the ring records, the handler dumps from signal
# context, and the process keeps serving afterwards.
python3 - "$SERVE_PORT" << 'EOF'
import http.client, json, sys

conn = http.client.HTTPConnection("127.0.0.1", int(sys.argv[1]), timeout=60)
conn.request("POST", "/synth", json.dumps({"design": "sqrt"}))
assert conn.getresponse().status == 200, "marker /synth request failed"
EOF
rm -f "$SERVE_OUT/flight.dump"
kill -QUIT "$SERVE_PID"
for _ in $(seq 1 100); do
  [ -s "$SERVE_OUT/flight.dump" ] && break
  sleep 0.1
done
python3 - "$SERVE_OUT/flight.dump" << 'EOF'
import json, sys

lines = [l for l in open(sys.argv[1]) if l.strip()]
assert lines, "flight dump is empty"
meta = json.loads(lines[0])["flight_recorder"]
assert meta["total_recorded"] >= 1, "flight dump recorded nothing"
events = [json.loads(l) for l in lines[1:]]
assert events, "flight dump has no events"
access = [e for e in events
          if e["component"] == "serve" and e["msg"].startswith("request")]
assert access, "flight dump has no serve access events"
newest = max(access, key=lambda e: e["seq"])
assert "endpoint=/synth" in newest["msg"], (
    f"newest access event is not the marker request: {newest['msg']}")
print(f"flight smoke: {len(events)} events dumped on SIGQUIT, newest "
      "access event is the marker /synth request")
EOF

# The SIGQUIT dump must not have killed the daemon.
python3 - "$SERVE_PORT" << 'EOF'
import http.client, json, sys

conn = http.client.HTTPConnection("127.0.0.1", int(sys.argv[1]), timeout=60)
conn.request("GET", "/healthz")
r = conn.getresponse()
assert r.status == 200, "daemon died after SIGQUIT"
r.read()
conn.request("GET", "/debug/flight")
r = conn.getresponse()
assert r.status == 200, f"/debug/flight status {r.status}"
doc = json.loads(r.read())
assert doc["flight_recorder"]["total_recorded"] >= 1
assert doc["events"], "/debug/flight has no events"
print("flight smoke: daemon alive after SIGQUIT, /debug/flight ok")
EOF

kill -TERM "$SERVE_PID"
if ! wait "$SERVE_PID"; then
  echo "serve smoke: daemon exited nonzero after SIGTERM" >&2
  exit 1
fi
grep -q "drained" "$SERVE_OUT/serve.log" || {
  echo "serve smoke: daemon did not report a clean drain" >&2
  exit 1
}

# The structured access log must hold one parseable JSONL record per
# dispatched request, including the marker /synth.
python3 - "$SERVE_OUT/access.jsonl" << 'EOF'
import json, sys

recs = [json.loads(l) for l in open(sys.argv[1]) if l.strip()]
assert recs, "access log is empty"
access = [r for r in recs if r.get("msg") == "request"]
assert access, "access log has no request records"
for r in access:
    for key in ("ts", "level", "component", "session", "method", "endpoint",
                "status", "ms", "cache_hit"):
        assert key in r, f"access record missing {key}: {r}"
assert any(r["endpoint"] == "/synth" for r in access)
print(f"access log: {len(access)} request records, all well-formed")
EOF

# --- Bench regression gate: every smoke report is compared against the
# committed baselines with tolerance bands (see src/core/bench_check.cpp
# for the rules; loose on wall time, exact on invariants).
./build/src/cli/mphls bench --check --in "$BENCH_OUT" --in "$SERVE_OUT" \
  --out build/BENCH_check.json

echo "ci: all checks passed"
