file(REMOVE_RECURSE
  "CMakeFiles/gcd_verify.dir/gcd_verify.cpp.o"
  "CMakeFiles/gcd_verify.dir/gcd_verify.cpp.o.d"
  "gcd_verify"
  "gcd_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gcd_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
