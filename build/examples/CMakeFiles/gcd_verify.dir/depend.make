# Empty dependencies file for gcd_verify.
# This may be replaced when dependencies are built.
