file(REMOVE_RECURSE
  "CMakeFiles/diffeq_explore.dir/diffeq_explore.cpp.o"
  "CMakeFiles/diffeq_explore.dir/diffeq_explore.cpp.o.d"
  "diffeq_explore"
  "diffeq_explore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/diffeq_explore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
