# Empty compiler generated dependencies file for diffeq_explore.
# This may be replaced when dependencies are built.
