# Empty dependencies file for ewf_pipeline.
# This may be replaced when dependencies are built.
