file(REMOVE_RECURSE
  "CMakeFiles/ewf_pipeline.dir/ewf_pipeline.cpp.o"
  "CMakeFiles/ewf_pipeline.dir/ewf_pipeline.cpp.o.d"
  "ewf_pipeline"
  "ewf_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ewf_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
