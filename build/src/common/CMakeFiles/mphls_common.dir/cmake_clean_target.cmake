file(REMOVE_RECURSE
  "libmphls_common.a"
)
