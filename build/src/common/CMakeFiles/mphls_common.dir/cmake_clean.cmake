file(REMOVE_RECURSE
  "CMakeFiles/mphls_common.dir/bitutil.cpp.o"
  "CMakeFiles/mphls_common.dir/bitutil.cpp.o.d"
  "CMakeFiles/mphls_common.dir/diag.cpp.o"
  "CMakeFiles/mphls_common.dir/diag.cpp.o.d"
  "CMakeFiles/mphls_common.dir/fixedpoint.cpp.o"
  "CMakeFiles/mphls_common.dir/fixedpoint.cpp.o.d"
  "libmphls_common.a"
  "libmphls_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mphls_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
