# Empty compiler generated dependencies file for mphls_common.
# This may be replaced when dependencies are built.
