file(REMOVE_RECURSE
  "libmphls_sched.a"
)
