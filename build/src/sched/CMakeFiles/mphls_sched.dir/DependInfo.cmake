
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/asap.cpp" "src/sched/CMakeFiles/mphls_sched.dir/asap.cpp.o" "gcc" "src/sched/CMakeFiles/mphls_sched.dir/asap.cpp.o.d"
  "/root/repo/src/sched/bnb.cpp" "src/sched/CMakeFiles/mphls_sched.dir/bnb.cpp.o" "gcc" "src/sched/CMakeFiles/mphls_sched.dir/bnb.cpp.o.d"
  "/root/repo/src/sched/force_directed.cpp" "src/sched/CMakeFiles/mphls_sched.dir/force_directed.cpp.o" "gcc" "src/sched/CMakeFiles/mphls_sched.dir/force_directed.cpp.o.d"
  "/root/repo/src/sched/freedom.cpp" "src/sched/CMakeFiles/mphls_sched.dir/freedom.cpp.o" "gcc" "src/sched/CMakeFiles/mphls_sched.dir/freedom.cpp.o.d"
  "/root/repo/src/sched/list_sched.cpp" "src/sched/CMakeFiles/mphls_sched.dir/list_sched.cpp.o" "gcc" "src/sched/CMakeFiles/mphls_sched.dir/list_sched.cpp.o.d"
  "/root/repo/src/sched/pipeline.cpp" "src/sched/CMakeFiles/mphls_sched.dir/pipeline.cpp.o" "gcc" "src/sched/CMakeFiles/mphls_sched.dir/pipeline.cpp.o.d"
  "/root/repo/src/sched/sched_util.cpp" "src/sched/CMakeFiles/mphls_sched.dir/sched_util.cpp.o" "gcc" "src/sched/CMakeFiles/mphls_sched.dir/sched_util.cpp.o.d"
  "/root/repo/src/sched/schedule.cpp" "src/sched/CMakeFiles/mphls_sched.dir/schedule.cpp.o" "gcc" "src/sched/CMakeFiles/mphls_sched.dir/schedule.cpp.o.d"
  "/root/repo/src/sched/transform_sched.cpp" "src/sched/CMakeFiles/mphls_sched.dir/transform_sched.cpp.o" "gcc" "src/sched/CMakeFiles/mphls_sched.dir/transform_sched.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/mphls_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/lib/CMakeFiles/mphls_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mphls_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
