# Empty compiler generated dependencies file for mphls_sched.
# This may be replaced when dependencies are built.
