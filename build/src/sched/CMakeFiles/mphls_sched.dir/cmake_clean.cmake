file(REMOVE_RECURSE
  "CMakeFiles/mphls_sched.dir/asap.cpp.o"
  "CMakeFiles/mphls_sched.dir/asap.cpp.o.d"
  "CMakeFiles/mphls_sched.dir/bnb.cpp.o"
  "CMakeFiles/mphls_sched.dir/bnb.cpp.o.d"
  "CMakeFiles/mphls_sched.dir/force_directed.cpp.o"
  "CMakeFiles/mphls_sched.dir/force_directed.cpp.o.d"
  "CMakeFiles/mphls_sched.dir/freedom.cpp.o"
  "CMakeFiles/mphls_sched.dir/freedom.cpp.o.d"
  "CMakeFiles/mphls_sched.dir/list_sched.cpp.o"
  "CMakeFiles/mphls_sched.dir/list_sched.cpp.o.d"
  "CMakeFiles/mphls_sched.dir/pipeline.cpp.o"
  "CMakeFiles/mphls_sched.dir/pipeline.cpp.o.d"
  "CMakeFiles/mphls_sched.dir/sched_util.cpp.o"
  "CMakeFiles/mphls_sched.dir/sched_util.cpp.o.d"
  "CMakeFiles/mphls_sched.dir/schedule.cpp.o"
  "CMakeFiles/mphls_sched.dir/schedule.cpp.o.d"
  "CMakeFiles/mphls_sched.dir/transform_sched.cpp.o"
  "CMakeFiles/mphls_sched.dir/transform_sched.cpp.o.d"
  "libmphls_sched.a"
  "libmphls_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mphls_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
