file(REMOVE_RECURSE
  "libmphls_estim.a"
)
