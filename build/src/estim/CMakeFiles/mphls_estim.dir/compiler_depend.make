# Empty compiler generated dependencies file for mphls_estim.
# This may be replaced when dependencies are built.
