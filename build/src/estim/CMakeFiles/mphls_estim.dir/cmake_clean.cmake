file(REMOVE_RECURSE
  "CMakeFiles/mphls_estim.dir/estimate.cpp.o"
  "CMakeFiles/mphls_estim.dir/estimate.cpp.o.d"
  "libmphls_estim.a"
  "libmphls_estim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mphls_estim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
