file(REMOVE_RECURSE
  "libmphls_lib.a"
)
