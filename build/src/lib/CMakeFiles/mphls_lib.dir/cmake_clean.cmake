file(REMOVE_RECURSE
  "CMakeFiles/mphls_lib.dir/library.cpp.o"
  "CMakeFiles/mphls_lib.dir/library.cpp.o.d"
  "libmphls_lib.a"
  "libmphls_lib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mphls_lib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
