# Empty dependencies file for mphls_lib.
# This may be replaced when dependencies are built.
