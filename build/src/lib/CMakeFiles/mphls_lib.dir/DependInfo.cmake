
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lib/library.cpp" "src/lib/CMakeFiles/mphls_lib.dir/library.cpp.o" "gcc" "src/lib/CMakeFiles/mphls_lib.dir/library.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/mphls_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mphls_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
