
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/algebraic.cpp" "src/opt/CMakeFiles/mphls_opt.dir/algebraic.cpp.o" "gcc" "src/opt/CMakeFiles/mphls_opt.dir/algebraic.cpp.o.d"
  "/root/repo/src/opt/constfold.cpp" "src/opt/CMakeFiles/mphls_opt.dir/constfold.cpp.o" "gcc" "src/opt/CMakeFiles/mphls_opt.dir/constfold.cpp.o.d"
  "/root/repo/src/opt/cse.cpp" "src/opt/CMakeFiles/mphls_opt.dir/cse.cpp.o" "gcc" "src/opt/CMakeFiles/mphls_opt.dir/cse.cpp.o.d"
  "/root/repo/src/opt/dce.cpp" "src/opt/CMakeFiles/mphls_opt.dir/dce.cpp.o" "gcc" "src/opt/CMakeFiles/mphls_opt.dir/dce.cpp.o.d"
  "/root/repo/src/opt/forward.cpp" "src/opt/CMakeFiles/mphls_opt.dir/forward.cpp.o" "gcc" "src/opt/CMakeFiles/mphls_opt.dir/forward.cpp.o.d"
  "/root/repo/src/opt/pass.cpp" "src/opt/CMakeFiles/mphls_opt.dir/pass.cpp.o" "gcc" "src/opt/CMakeFiles/mphls_opt.dir/pass.cpp.o.d"
  "/root/repo/src/opt/strength.cpp" "src/opt/CMakeFiles/mphls_opt.dir/strength.cpp.o" "gcc" "src/opt/CMakeFiles/mphls_opt.dir/strength.cpp.o.d"
  "/root/repo/src/opt/treeheight.cpp" "src/opt/CMakeFiles/mphls_opt.dir/treeheight.cpp.o" "gcc" "src/opt/CMakeFiles/mphls_opt.dir/treeheight.cpp.o.d"
  "/root/repo/src/opt/unroll.cpp" "src/opt/CMakeFiles/mphls_opt.dir/unroll.cpp.o" "gcc" "src/opt/CMakeFiles/mphls_opt.dir/unroll.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/mphls_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mphls_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
