file(REMOVE_RECURSE
  "libmphls_opt.a"
)
