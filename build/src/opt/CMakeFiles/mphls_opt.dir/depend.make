# Empty dependencies file for mphls_opt.
# This may be replaced when dependencies are built.
