file(REMOVE_RECURSE
  "CMakeFiles/mphls_opt.dir/algebraic.cpp.o"
  "CMakeFiles/mphls_opt.dir/algebraic.cpp.o.d"
  "CMakeFiles/mphls_opt.dir/constfold.cpp.o"
  "CMakeFiles/mphls_opt.dir/constfold.cpp.o.d"
  "CMakeFiles/mphls_opt.dir/cse.cpp.o"
  "CMakeFiles/mphls_opt.dir/cse.cpp.o.d"
  "CMakeFiles/mphls_opt.dir/dce.cpp.o"
  "CMakeFiles/mphls_opt.dir/dce.cpp.o.d"
  "CMakeFiles/mphls_opt.dir/forward.cpp.o"
  "CMakeFiles/mphls_opt.dir/forward.cpp.o.d"
  "CMakeFiles/mphls_opt.dir/pass.cpp.o"
  "CMakeFiles/mphls_opt.dir/pass.cpp.o.d"
  "CMakeFiles/mphls_opt.dir/strength.cpp.o"
  "CMakeFiles/mphls_opt.dir/strength.cpp.o.d"
  "CMakeFiles/mphls_opt.dir/treeheight.cpp.o"
  "CMakeFiles/mphls_opt.dir/treeheight.cpp.o.d"
  "CMakeFiles/mphls_opt.dir/unroll.cpp.o"
  "CMakeFiles/mphls_opt.dir/unroll.cpp.o.d"
  "libmphls_opt.a"
  "libmphls_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mphls_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
