file(REMOVE_RECURSE
  "libmphls_rtl.a"
)
