file(REMOVE_RECURSE
  "CMakeFiles/mphls_rtl.dir/microsim.cpp.o"
  "CMakeFiles/mphls_rtl.dir/microsim.cpp.o.d"
  "CMakeFiles/mphls_rtl.dir/rtlsim.cpp.o"
  "CMakeFiles/mphls_rtl.dir/rtlsim.cpp.o.d"
  "CMakeFiles/mphls_rtl.dir/verilog.cpp.o"
  "CMakeFiles/mphls_rtl.dir/verilog.cpp.o.d"
  "libmphls_rtl.a"
  "libmphls_rtl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mphls_rtl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
