# Empty dependencies file for mphls_rtl.
# This may be replaced when dependencies are built.
