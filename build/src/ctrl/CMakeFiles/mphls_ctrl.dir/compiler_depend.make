# Empty compiler generated dependencies file for mphls_ctrl.
# This may be replaced when dependencies are built.
