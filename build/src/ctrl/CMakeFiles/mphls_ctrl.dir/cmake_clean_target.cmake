file(REMOVE_RECURSE
  "libmphls_ctrl.a"
)
