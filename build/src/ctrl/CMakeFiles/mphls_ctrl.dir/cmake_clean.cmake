file(REMOVE_RECURSE
  "CMakeFiles/mphls_ctrl.dir/encode.cpp.o"
  "CMakeFiles/mphls_ctrl.dir/encode.cpp.o.d"
  "CMakeFiles/mphls_ctrl.dir/fsm.cpp.o"
  "CMakeFiles/mphls_ctrl.dir/fsm.cpp.o.d"
  "CMakeFiles/mphls_ctrl.dir/microcode.cpp.o"
  "CMakeFiles/mphls_ctrl.dir/microcode.cpp.o.d"
  "CMakeFiles/mphls_ctrl.dir/sop.cpp.o"
  "CMakeFiles/mphls_ctrl.dir/sop.cpp.o.d"
  "libmphls_ctrl.a"
  "libmphls_ctrl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mphls_ctrl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
