# Empty compiler generated dependencies file for mphls.
# This may be replaced when dependencies are built.
