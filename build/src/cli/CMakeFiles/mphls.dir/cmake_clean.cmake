file(REMOVE_RECURSE
  "CMakeFiles/mphls.dir/main.cpp.o"
  "CMakeFiles/mphls.dir/main.cpp.o.d"
  "mphls"
  "mphls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mphls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
