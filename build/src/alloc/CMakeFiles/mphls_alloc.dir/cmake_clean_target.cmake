file(REMOVE_RECURSE
  "libmphls_alloc.a"
)
