file(REMOVE_RECURSE
  "CMakeFiles/mphls_alloc.dir/clique.cpp.o"
  "CMakeFiles/mphls_alloc.dir/clique.cpp.o.d"
  "CMakeFiles/mphls_alloc.dir/fu_alloc.cpp.o"
  "CMakeFiles/mphls_alloc.dir/fu_alloc.cpp.o.d"
  "CMakeFiles/mphls_alloc.dir/interconnect.cpp.o"
  "CMakeFiles/mphls_alloc.dir/interconnect.cpp.o.d"
  "CMakeFiles/mphls_alloc.dir/lifetime.cpp.o"
  "CMakeFiles/mphls_alloc.dir/lifetime.cpp.o.d"
  "CMakeFiles/mphls_alloc.dir/reg_alloc.cpp.o"
  "CMakeFiles/mphls_alloc.dir/reg_alloc.cpp.o.d"
  "libmphls_alloc.a"
  "libmphls_alloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mphls_alloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
