# Empty compiler generated dependencies file for mphls_alloc.
# This may be replaced when dependencies are built.
