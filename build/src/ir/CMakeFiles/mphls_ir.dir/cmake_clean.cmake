file(REMOVE_RECURSE
  "CMakeFiles/mphls_ir.dir/analysis.cpp.o"
  "CMakeFiles/mphls_ir.dir/analysis.cpp.o.d"
  "CMakeFiles/mphls_ir.dir/cdfg.cpp.o"
  "CMakeFiles/mphls_ir.dir/cdfg.cpp.o.d"
  "CMakeFiles/mphls_ir.dir/deps.cpp.o"
  "CMakeFiles/mphls_ir.dir/deps.cpp.o.d"
  "CMakeFiles/mphls_ir.dir/dot.cpp.o"
  "CMakeFiles/mphls_ir.dir/dot.cpp.o.d"
  "CMakeFiles/mphls_ir.dir/interp.cpp.o"
  "CMakeFiles/mphls_ir.dir/interp.cpp.o.d"
  "CMakeFiles/mphls_ir.dir/opcode.cpp.o"
  "CMakeFiles/mphls_ir.dir/opcode.cpp.o.d"
  "CMakeFiles/mphls_ir.dir/verify.cpp.o"
  "CMakeFiles/mphls_ir.dir/verify.cpp.o.d"
  "libmphls_ir.a"
  "libmphls_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mphls_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
