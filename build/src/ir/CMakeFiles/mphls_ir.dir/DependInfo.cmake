
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/analysis.cpp" "src/ir/CMakeFiles/mphls_ir.dir/analysis.cpp.o" "gcc" "src/ir/CMakeFiles/mphls_ir.dir/analysis.cpp.o.d"
  "/root/repo/src/ir/cdfg.cpp" "src/ir/CMakeFiles/mphls_ir.dir/cdfg.cpp.o" "gcc" "src/ir/CMakeFiles/mphls_ir.dir/cdfg.cpp.o.d"
  "/root/repo/src/ir/deps.cpp" "src/ir/CMakeFiles/mphls_ir.dir/deps.cpp.o" "gcc" "src/ir/CMakeFiles/mphls_ir.dir/deps.cpp.o.d"
  "/root/repo/src/ir/dot.cpp" "src/ir/CMakeFiles/mphls_ir.dir/dot.cpp.o" "gcc" "src/ir/CMakeFiles/mphls_ir.dir/dot.cpp.o.d"
  "/root/repo/src/ir/interp.cpp" "src/ir/CMakeFiles/mphls_ir.dir/interp.cpp.o" "gcc" "src/ir/CMakeFiles/mphls_ir.dir/interp.cpp.o.d"
  "/root/repo/src/ir/opcode.cpp" "src/ir/CMakeFiles/mphls_ir.dir/opcode.cpp.o" "gcc" "src/ir/CMakeFiles/mphls_ir.dir/opcode.cpp.o.d"
  "/root/repo/src/ir/verify.cpp" "src/ir/CMakeFiles/mphls_ir.dir/verify.cpp.o" "gcc" "src/ir/CMakeFiles/mphls_ir.dir/verify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mphls_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
