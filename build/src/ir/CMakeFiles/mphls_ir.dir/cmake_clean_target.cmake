file(REMOVE_RECURSE
  "libmphls_ir.a"
)
