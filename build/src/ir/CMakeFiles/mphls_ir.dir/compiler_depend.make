# Empty compiler generated dependencies file for mphls_ir.
# This may be replaced when dependencies are built.
