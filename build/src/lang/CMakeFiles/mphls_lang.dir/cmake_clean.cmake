file(REMOVE_RECURSE
  "CMakeFiles/mphls_lang.dir/frontend.cpp.o"
  "CMakeFiles/mphls_lang.dir/frontend.cpp.o.d"
  "CMakeFiles/mphls_lang.dir/lexer.cpp.o"
  "CMakeFiles/mphls_lang.dir/lexer.cpp.o.d"
  "CMakeFiles/mphls_lang.dir/lower.cpp.o"
  "CMakeFiles/mphls_lang.dir/lower.cpp.o.d"
  "CMakeFiles/mphls_lang.dir/parser.cpp.o"
  "CMakeFiles/mphls_lang.dir/parser.cpp.o.d"
  "libmphls_lang.a"
  "libmphls_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mphls_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
