file(REMOVE_RECURSE
  "libmphls_lang.a"
)
