
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lang/frontend.cpp" "src/lang/CMakeFiles/mphls_lang.dir/frontend.cpp.o" "gcc" "src/lang/CMakeFiles/mphls_lang.dir/frontend.cpp.o.d"
  "/root/repo/src/lang/lexer.cpp" "src/lang/CMakeFiles/mphls_lang.dir/lexer.cpp.o" "gcc" "src/lang/CMakeFiles/mphls_lang.dir/lexer.cpp.o.d"
  "/root/repo/src/lang/lower.cpp" "src/lang/CMakeFiles/mphls_lang.dir/lower.cpp.o" "gcc" "src/lang/CMakeFiles/mphls_lang.dir/lower.cpp.o.d"
  "/root/repo/src/lang/parser.cpp" "src/lang/CMakeFiles/mphls_lang.dir/parser.cpp.o" "gcc" "src/lang/CMakeFiles/mphls_lang.dir/parser.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/mphls_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mphls_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
