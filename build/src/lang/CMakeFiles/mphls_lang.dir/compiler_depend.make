# Empty compiler generated dependencies file for mphls_lang.
# This may be replaced when dependencies are built.
