file(REMOVE_RECURSE
  "CMakeFiles/mphls_core.dir/designs.cpp.o"
  "CMakeFiles/mphls_core.dir/designs.cpp.o.d"
  "CMakeFiles/mphls_core.dir/dse.cpp.o"
  "CMakeFiles/mphls_core.dir/dse.cpp.o.d"
  "CMakeFiles/mphls_core.dir/synthesizer.cpp.o"
  "CMakeFiles/mphls_core.dir/synthesizer.cpp.o.d"
  "libmphls_core.a"
  "libmphls_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mphls_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
