file(REMOVE_RECURSE
  "libmphls_core.a"
)
