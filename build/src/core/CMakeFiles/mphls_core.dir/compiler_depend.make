# Empty compiler generated dependencies file for mphls_core.
# This may be replaced when dependencies are built.
