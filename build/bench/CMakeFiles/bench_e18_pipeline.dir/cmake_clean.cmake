file(REMOVE_RECURSE
  "CMakeFiles/bench_e18_pipeline.dir/bench_e18_pipeline.cpp.o"
  "CMakeFiles/bench_e18_pipeline.dir/bench_e18_pipeline.cpp.o.d"
  "bench_e18_pipeline"
  "bench_e18_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e18_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
