# Empty dependencies file for bench_e18_pipeline.
# This may be replaced when dependencies are built.
