file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_interconnect.dir/bench_e11_interconnect.cpp.o"
  "CMakeFiles/bench_e11_interconnect.dir/bench_e11_interconnect.cpp.o.d"
  "bench_e11_interconnect"
  "bench_e11_interconnect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_interconnect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
