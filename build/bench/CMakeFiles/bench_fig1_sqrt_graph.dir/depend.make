# Empty dependencies file for bench_fig1_sqrt_graph.
# This may be replaced when dependencies are built.
