file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_sqrt_graph.dir/bench_fig1_sqrt_graph.cpp.o"
  "CMakeFiles/bench_fig1_sqrt_graph.dir/bench_fig1_sqrt_graph.cpp.o.d"
  "bench_fig1_sqrt_graph"
  "bench_fig1_sqrt_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_sqrt_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
