# Empty dependencies file for bench_e13_dse.
# This may be replaced when dependencies are built.
