# Empty dependencies file for bench_e9_schedulers.
# This may be replaced when dependencies are built.
