file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_schedulers.dir/bench_e9_schedulers.cpp.o"
  "CMakeFiles/bench_e9_schedulers.dir/bench_e9_schedulers.cpp.o.d"
  "bench_e9_schedulers"
  "bench_e9_schedulers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_schedulers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
