file(REMOVE_RECURSE
  "CMakeFiles/bench_e17_multicycle.dir/bench_e17_multicycle.cpp.o"
  "CMakeFiles/bench_e17_multicycle.dir/bench_e17_multicycle.cpp.o.d"
  "bench_e17_multicycle"
  "bench_e17_multicycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e17_multicycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
