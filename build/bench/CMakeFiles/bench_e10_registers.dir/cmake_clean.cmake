file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_registers.dir/bench_e10_registers.cpp.o"
  "CMakeFiles/bench_e10_registers.dir/bench_e10_registers.cpp.o.d"
  "bench_e10_registers"
  "bench_e10_registers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_registers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
