# Empty dependencies file for bench_e16_runtime.
# This may be replaced when dependencies are built.
