file(REMOVE_RECURSE
  "CMakeFiles/bench_e12_controller.dir/bench_e12_controller.cpp.o"
  "CMakeFiles/bench_e12_controller.dir/bench_e12_controller.cpp.o.d"
  "bench_e12_controller"
  "bench_e12_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
