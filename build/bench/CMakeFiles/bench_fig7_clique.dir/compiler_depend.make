# Empty compiler generated dependencies file for bench_fig7_clique.
# This may be replaced when dependencies are built.
