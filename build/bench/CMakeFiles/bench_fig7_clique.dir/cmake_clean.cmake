file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_clique.dir/bench_fig7_clique.cpp.o"
  "CMakeFiles/bench_fig7_clique.dir/bench_fig7_clique.cpp.o.d"
  "bench_fig7_clique"
  "bench_fig7_clique.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_clique.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
