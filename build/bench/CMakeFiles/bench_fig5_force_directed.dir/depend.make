# Empty dependencies file for bench_fig5_force_directed.
# This may be replaced when dependencies are built.
