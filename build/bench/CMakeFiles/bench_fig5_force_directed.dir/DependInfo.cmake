
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig5_force_directed.cpp" "bench/CMakeFiles/bench_fig5_force_directed.dir/bench_fig5_force_directed.cpp.o" "gcc" "bench/CMakeFiles/bench_fig5_force_directed.dir/bench_fig5_force_directed.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mphls_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/mphls_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/mphls_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/estim/CMakeFiles/mphls_estim.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/mphls_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/ctrl/CMakeFiles/mphls_ctrl.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/mphls_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/mphls_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/lib/CMakeFiles/mphls_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/mphls_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mphls_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
