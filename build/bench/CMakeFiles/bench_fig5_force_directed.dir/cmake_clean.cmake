file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_force_directed.dir/bench_fig5_force_directed.cpp.o"
  "CMakeFiles/bench_fig5_force_directed.dir/bench_fig5_force_directed.cpp.o.d"
  "bench_fig5_force_directed"
  "bench_fig5_force_directed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_force_directed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
