file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_list_vs_bnb.dir/bench_e8_list_vs_bnb.cpp.o"
  "CMakeFiles/bench_e8_list_vs_bnb.dir/bench_e8_list_vs_bnb.cpp.o.d"
  "bench_e8_list_vs_bnb"
  "bench_e8_list_vs_bnb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_list_vs_bnb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
