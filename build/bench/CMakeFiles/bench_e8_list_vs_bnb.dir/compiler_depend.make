# Empty compiler generated dependencies file for bench_e8_list_vs_bnb.
# This may be replaced when dependencies are built.
