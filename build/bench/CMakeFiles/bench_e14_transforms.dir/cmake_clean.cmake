file(REMOVE_RECURSE
  "CMakeFiles/bench_e14_transforms.dir/bench_e14_transforms.cpp.o"
  "CMakeFiles/bench_e14_transforms.dir/bench_e14_transforms.cpp.o.d"
  "bench_e14_transforms"
  "bench_e14_transforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e14_transforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
