file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_sqrt_schedule.dir/bench_fig2_sqrt_schedule.cpp.o"
  "CMakeFiles/bench_fig2_sqrt_schedule.dir/bench_fig2_sqrt_schedule.cpp.o.d"
  "bench_fig2_sqrt_schedule"
  "bench_fig2_sqrt_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_sqrt_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
