file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_asap.dir/bench_fig3_asap.cpp.o"
  "CMakeFiles/bench_fig3_asap.dir/bench_fig3_asap.cpp.o.d"
  "bench_fig3_asap"
  "bench_fig3_asap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_asap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
