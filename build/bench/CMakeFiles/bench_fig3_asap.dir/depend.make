# Empty dependencies file for bench_fig3_asap.
# This may be replaced when dependencies are built.
