file(REMOVE_RECURSE
  "CMakeFiles/bench_e15_verification.dir/bench_e15_verification.cpp.o"
  "CMakeFiles/bench_e15_verification.dir/bench_e15_verification.cpp.o.d"
  "bench_e15_verification"
  "bench_e15_verification.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e15_verification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
