# Empty dependencies file for bench_e15_verification.
# This may be replaced when dependencies are built.
