# Empty compiler generated dependencies file for mphls_tests.
# This may be replaced when dependencies are built.
