file(REMOVE_RECURSE
  "CMakeFiles/mphls_tests.dir/test_alloc.cpp.o"
  "CMakeFiles/mphls_tests.dir/test_alloc.cpp.o.d"
  "CMakeFiles/mphls_tests.dir/test_common.cpp.o"
  "CMakeFiles/mphls_tests.dir/test_common.cpp.o.d"
  "CMakeFiles/mphls_tests.dir/test_ctrl.cpp.o"
  "CMakeFiles/mphls_tests.dir/test_ctrl.cpp.o.d"
  "CMakeFiles/mphls_tests.dir/test_integration.cpp.o"
  "CMakeFiles/mphls_tests.dir/test_integration.cpp.o.d"
  "CMakeFiles/mphls_tests.dir/test_ir.cpp.o"
  "CMakeFiles/mphls_tests.dir/test_ir.cpp.o.d"
  "CMakeFiles/mphls_tests.dir/test_lang.cpp.o"
  "CMakeFiles/mphls_tests.dir/test_lang.cpp.o.d"
  "CMakeFiles/mphls_tests.dir/test_lib_estim.cpp.o"
  "CMakeFiles/mphls_tests.dir/test_lib_estim.cpp.o.d"
  "CMakeFiles/mphls_tests.dir/test_multicycle.cpp.o"
  "CMakeFiles/mphls_tests.dir/test_multicycle.cpp.o.d"
  "CMakeFiles/mphls_tests.dir/test_opt.cpp.o"
  "CMakeFiles/mphls_tests.dir/test_opt.cpp.o.d"
  "CMakeFiles/mphls_tests.dir/test_pipeline.cpp.o"
  "CMakeFiles/mphls_tests.dir/test_pipeline.cpp.o.d"
  "CMakeFiles/mphls_tests.dir/test_property.cpp.o"
  "CMakeFiles/mphls_tests.dir/test_property.cpp.o.d"
  "CMakeFiles/mphls_tests.dir/test_rtl.cpp.o"
  "CMakeFiles/mphls_tests.dir/test_rtl.cpp.o.d"
  "CMakeFiles/mphls_tests.dir/test_sched.cpp.o"
  "CMakeFiles/mphls_tests.dir/test_sched.cpp.o.d"
  "mphls_tests"
  "mphls_tests.pdb"
  "mphls_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mphls_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
