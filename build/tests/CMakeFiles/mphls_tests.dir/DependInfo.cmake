
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_alloc.cpp" "tests/CMakeFiles/mphls_tests.dir/test_alloc.cpp.o" "gcc" "tests/CMakeFiles/mphls_tests.dir/test_alloc.cpp.o.d"
  "/root/repo/tests/test_common.cpp" "tests/CMakeFiles/mphls_tests.dir/test_common.cpp.o" "gcc" "tests/CMakeFiles/mphls_tests.dir/test_common.cpp.o.d"
  "/root/repo/tests/test_ctrl.cpp" "tests/CMakeFiles/mphls_tests.dir/test_ctrl.cpp.o" "gcc" "tests/CMakeFiles/mphls_tests.dir/test_ctrl.cpp.o.d"
  "/root/repo/tests/test_integration.cpp" "tests/CMakeFiles/mphls_tests.dir/test_integration.cpp.o" "gcc" "tests/CMakeFiles/mphls_tests.dir/test_integration.cpp.o.d"
  "/root/repo/tests/test_ir.cpp" "tests/CMakeFiles/mphls_tests.dir/test_ir.cpp.o" "gcc" "tests/CMakeFiles/mphls_tests.dir/test_ir.cpp.o.d"
  "/root/repo/tests/test_lang.cpp" "tests/CMakeFiles/mphls_tests.dir/test_lang.cpp.o" "gcc" "tests/CMakeFiles/mphls_tests.dir/test_lang.cpp.o.d"
  "/root/repo/tests/test_lib_estim.cpp" "tests/CMakeFiles/mphls_tests.dir/test_lib_estim.cpp.o" "gcc" "tests/CMakeFiles/mphls_tests.dir/test_lib_estim.cpp.o.d"
  "/root/repo/tests/test_multicycle.cpp" "tests/CMakeFiles/mphls_tests.dir/test_multicycle.cpp.o" "gcc" "tests/CMakeFiles/mphls_tests.dir/test_multicycle.cpp.o.d"
  "/root/repo/tests/test_opt.cpp" "tests/CMakeFiles/mphls_tests.dir/test_opt.cpp.o" "gcc" "tests/CMakeFiles/mphls_tests.dir/test_opt.cpp.o.d"
  "/root/repo/tests/test_pipeline.cpp" "tests/CMakeFiles/mphls_tests.dir/test_pipeline.cpp.o" "gcc" "tests/CMakeFiles/mphls_tests.dir/test_pipeline.cpp.o.d"
  "/root/repo/tests/test_property.cpp" "tests/CMakeFiles/mphls_tests.dir/test_property.cpp.o" "gcc" "tests/CMakeFiles/mphls_tests.dir/test_property.cpp.o.d"
  "/root/repo/tests/test_rtl.cpp" "tests/CMakeFiles/mphls_tests.dir/test_rtl.cpp.o" "gcc" "tests/CMakeFiles/mphls_tests.dir/test_rtl.cpp.o.d"
  "/root/repo/tests/test_sched.cpp" "tests/CMakeFiles/mphls_tests.dir/test_sched.cpp.o" "gcc" "tests/CMakeFiles/mphls_tests.dir/test_sched.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mphls_core.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/mphls_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/mphls_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/estim/CMakeFiles/mphls_estim.dir/DependInfo.cmake"
  "/root/repo/build/src/rtl/CMakeFiles/mphls_rtl.dir/DependInfo.cmake"
  "/root/repo/build/src/ctrl/CMakeFiles/mphls_ctrl.dir/DependInfo.cmake"
  "/root/repo/build/src/alloc/CMakeFiles/mphls_alloc.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/mphls_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/lib/CMakeFiles/mphls_lib.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/mphls_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mphls_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
